//! Execution traces: an optional typed record of the simulated schedule.
//!
//! Every interesting simulated occurrence — a task attempt, a shuffle
//! fetch, a broadcast round, a lineage recompute — becomes one
//! [`TraceEvent`] with a start/end interval in virtual time, the phase it
//! belongs to, and a typed [`EventKind`] payload. The trace renders as a
//! text Gantt chart, exports to CSV (round-trippable) and to
//! Chrome-trace/Perfetto JSON (see [`crate::chrome`]), and feeds the
//! [`crate::Metrics`] summary and [`crate::CriticalPath`] analysis — the
//! visibility tools for debugging framework scheduling behaviour (stage
//! barriers, stragglers, dispatch serialization, broadcast cost).

/// What a trace event records. Only `Task` events occupy a core; the
/// other kinds live on the network/driver timelines.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A task attempt executing on a core. `speculative` marks backup
    /// attempts launched by speculative execution.
    Task { label: String, speculative: bool },
    /// A point-to-point transfer (shuffle fetch, staging, gather leg).
    /// A `killed` fetch event is one lost on the wire and re-sent.
    Fetch {
        from_node: usize,
        to_node: usize,
        bytes: u64,
    },
    /// One broadcast round from the driver to `dest_nodes` destinations.
    Broadcast { bytes: u64, dest_nodes: usize },
    /// Recovery work outside normal task placement (lineage recompute
    /// dispatch, DB re-enqueue, failure detection window).
    Recovery { label: String },
    /// Bytes written to (and later read back from) node-local scratch
    /// disk because `node`'s memory budget could not hold them resident.
    Spill { node: usize, bytes: u64 },
    /// Cached/resident bytes dropped from `node` under memory pressure;
    /// recoverable by lineage recompute, so no data is lost.
    Evict { node: usize, bytes: u64 },
    /// A task or worker on `node` killed outright for exceeding the memory
    /// budget (after spill/eviction could not make room).
    OomKill { node: usize },
}

impl EventKind {
    /// Stable label used by the Gantt legend, CSV `kind` column,
    /// Chrome-trace `name`, and critical-path attribution.
    pub fn label(&self) -> &str {
        match self {
            EventKind::Task { label, .. } => label,
            EventKind::Fetch { .. } => "fetch",
            EventKind::Broadcast { .. } => "broadcast",
            EventKind::Recovery { label } => label,
            EventKind::Spill { .. } => "spill",
            EventKind::Evict { .. } => "evict",
            EventKind::OomKill { .. } => "oom-kill",
        }
    }

    /// CSV/JSON discriminant.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EventKind::Task { .. } => "task",
            EventKind::Fetch { .. } => "fetch",
            EventKind::Broadcast { .. } => "broadcast",
            EventKind::Recovery { .. } => "recovery",
            EventKind::Spill { .. } => "spill",
            EventKind::Evict { .. } => "evict",
            EventKind::OomKill { .. } => "oomkill",
        }
    }
}

/// One scheduled occurrence in the simulated run.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Monotonic id in record order (re-assigned to sorted order by
    /// engines that record from several threads).
    pub task: usize,
    /// Core id for `Task` events; a track hint (e.g. destination node or
    /// rank) for non-task events, which do not occupy the core.
    pub core: usize,
    pub start_s: f64,
    pub end_s: f64,
    /// True if this attempt was cut short (node death, speculative loser)
    /// or, for a fetch, lost on the wire — the interval's work was wasted.
    pub killed: bool,
    /// When the event *could* have started (task release time). The gap
    /// `start_s - ready_s` is queue wait.
    pub ready_s: f64,
    /// Owning phase ("broadcast", "edge-discovery", …); empty when the
    /// engine did not declare one.
    pub phase: String,
    pub kind: EventKind,
}

impl TraceEvent {
    /// Only task attempts hold a core busy; fetches/broadcasts/recovery
    /// windows overlap freely with task execution.
    pub fn occupies_core(&self) -> bool {
        matches!(self.kind, EventKind::Task { .. })
    }
}

/// A recorded schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Record a completed plain task attempt (compatibility shim around
    /// [`Self::record`]).
    pub fn push(&mut self, task: usize, core: usize, start_s: f64, end_s: f64) {
        self.record(TraceEvent {
            task,
            core,
            start_s,
            end_s,
            killed: false,
            ready_s: start_s,
            phase: String::new(),
            kind: EventKind::Task {
                label: "task".into(),
                speculative: false,
            },
        });
    }

    /// Record a task attempt killed by a node death at `died_at`.
    pub fn push_killed(&mut self, task: usize, core: usize, start_s: f64, died_at: f64) {
        self.record(TraceEvent {
            task,
            core,
            start_s,
            end_s: died_at,
            killed: true,
            ready_s: start_s,
            phase: String::new(),
            kind: EventKind::Task {
                label: "task".into(),
                speculative: false,
            },
        });
    }

    /// Record an arbitrary typed event.
    pub fn record(&mut self, e: TraceEvent) {
        debug_assert!(e.end_s >= e.start_s, "event ends before it starts");
        debug_assert!(e.ready_s <= e.start_s + 1e-12, "ready after start");
        self.events.push(e);
    }

    /// Next unused event id (record order).
    pub fn next_id(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Makespan covered by the trace.
    pub fn span(&self) -> f64 {
        self.events.iter().map(|e| e.end_s).fold(0.0, f64::max)
    }

    /// Core utilization counting *useful* work only: completed (non-killed)
    /// task-attempt time / (cores × makespan). Killed attempts' partial
    /// work is excluded — it was thrown away. Compare with
    /// [`Self::busy_fraction`].
    pub fn utilization(&self, n_cores: usize) -> f64 {
        self.occupancy(n_cores, false)
    }

    /// Fraction of core-time that was *occupied*, useful or not: includes
    /// killed attempts (node-death victims, speculative losers). The gap
    /// `busy_fraction - utilization` is the core-time lost to failures.
    pub fn busy_fraction(&self, n_cores: usize) -> f64 {
        self.occupancy(n_cores, true)
    }

    fn occupancy(&self, n_cores: usize, include_killed: bool) -> f64 {
        let span = self.span();
        if span <= 0.0 || n_cores == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .events
            .iter()
            .filter(|e| e.occupies_core() && (include_killed || !e.killed))
            .map(|e| e.end_s - e.start_s)
            .sum();
        busy / (n_cores as f64 * span)
    }

    /// Render a text Gantt chart: one row per core, `width` columns of
    /// virtual time, `#` for busy, `x` for a killed attempt, `.` for idle.
    /// Only core-occupying (task) events are drawn.
    pub fn gantt(&self, n_cores: usize, width: usize) -> String {
        assert!(width >= 1);
        let span = self.span().max(f64::MIN_POSITIVE);
        let mut rows = vec![vec![b'.'; width]; n_cores];
        for e in &self.events {
            if e.core >= n_cores || !e.occupies_core() {
                continue;
            }
            // A zero-duration event at the span boundary maps to the last
            // cell: clamp the floor into range *first*, so `a + 1 <= width`
            // always holds and the cell range below never inverts.
            let a = ((e.start_s / span) * width as f64).floor() as usize;
            let a = a.min(width - 1);
            let b = (((e.end_s / span) * width as f64).ceil() as usize).clamp(a + 1, width);
            let mark = if e.killed { b'x' } else { b'#' };
            for cell in &mut rows[e.core][a..b] {
                *cell = mark;
            }
        }
        let mut out = String::new();
        for (c, row) in rows.iter().enumerate() {
            out.push_str(&format!("core {c:>3} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push('\n');
        }
        out.push_str(&format!("          0 .. {:.3}s\n", span));
        out
    }

    /// Serialize as CSV, one row per event, for external plotting. The
    /// `from_node`/`to_node`/`bytes`/`dest_nodes` columns are empty for
    /// kinds they do not apply to. Labels and phases must not contain
    /// commas or newlines (engine-internal identifiers never do).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for e in &self.events {
            let (label, speculative, from_node, to_node, bytes, dest_nodes) = match &e.kind {
                EventKind::Task { label, speculative } => (
                    label.clone(),
                    speculative.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ),
                EventKind::Fetch {
                    from_node,
                    to_node,
                    bytes,
                } => (
                    "fetch".into(),
                    String::new(),
                    from_node.to_string(),
                    to_node.to_string(),
                    bytes.to_string(),
                    String::new(),
                ),
                EventKind::Broadcast { bytes, dest_nodes } => (
                    "broadcast".into(),
                    String::new(),
                    String::new(),
                    String::new(),
                    bytes.to_string(),
                    dest_nodes.to_string(),
                ),
                EventKind::Recovery { label } => (
                    label.clone(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ),
                // Memory events reuse the from_node column for their node.
                EventKind::Spill { node, bytes } => (
                    "spill".into(),
                    String::new(),
                    node.to_string(),
                    String::new(),
                    bytes.to_string(),
                    String::new(),
                ),
                EventKind::Evict { node, bytes } => (
                    "evict".into(),
                    String::new(),
                    node.to_string(),
                    String::new(),
                    bytes.to_string(),
                    String::new(),
                ),
                EventKind::OomKill { node } => (
                    "oom-kill".into(),
                    String::new(),
                    node.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                ),
            };
            debug_assert!(!label.contains(',') && !e.phase.contains(','));
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                e.task,
                e.core,
                e.start_s,
                e.end_s,
                e.killed,
                e.kind.kind_name(),
                label,
                e.phase,
                e.ready_s,
                speculative,
                from_node,
                to_node,
                if matches!(e.kind, EventKind::Broadcast { .. }) {
                    format!("{bytes};{dest_nodes}")
                } else {
                    bytes.clone()
                },
            ));
        }
        out
    }

    /// Parse a trace back from [`Self::to_csv`] output (exact round-trip:
    /// `f64` values are printed with Rust's shortest-round-trip formatting).
    pub fn from_csv(csv: &str) -> Result<Trace, String> {
        let mut lines = csv.lines();
        match lines.next() {
            Some(h) if h == CSV_HEADER => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut t = Trace::default();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 13 {
                return Err(format!("row {i}: expected 13 fields, got {}", f.len()));
            }
            let num = |s: &str, what: &str| -> Result<f64, String> {
                s.parse().map_err(|_| format!("row {i}: bad {what}: {s}"))
            };
            let idx = |s: &str, what: &str| -> Result<usize, String> {
                s.parse().map_err(|_| format!("row {i}: bad {what}: {s}"))
            };
            let kind = match f[5] {
                "task" => EventKind::Task {
                    label: f[6].to_string(),
                    speculative: f[9] == "true",
                },
                "fetch" => EventKind::Fetch {
                    from_node: idx(f[10], "from_node")?,
                    to_node: idx(f[11], "to_node")?,
                    bytes: f[12]
                        .parse()
                        .map_err(|_| format!("row {i}: bad bytes: {}", f[12]))?,
                },
                "broadcast" => {
                    let (b, d) = f[12]
                        .split_once(';')
                        .ok_or_else(|| format!("row {i}: bad broadcast payload: {}", f[12]))?;
                    EventKind::Broadcast {
                        bytes: b.parse().map_err(|_| format!("row {i}: bad bytes: {b}"))?,
                        dest_nodes: idx(d, "dest_nodes")?,
                    }
                }
                "recovery" => EventKind::Recovery {
                    label: f[6].to_string(),
                },
                "spill" => EventKind::Spill {
                    node: idx(f[10], "node")?,
                    bytes: f[12]
                        .parse()
                        .map_err(|_| format!("row {i}: bad bytes: {}", f[12]))?,
                },
                "evict" => EventKind::Evict {
                    node: idx(f[10], "node")?,
                    bytes: f[12]
                        .parse()
                        .map_err(|_| format!("row {i}: bad bytes: {}", f[12]))?,
                },
                "oomkill" => EventKind::OomKill {
                    node: idx(f[10], "node")?,
                },
                other => return Err(format!("row {i}: unknown kind: {other}")),
            };
            t.record(TraceEvent {
                task: idx(f[0], "task")?,
                core: idx(f[1], "core")?,
                start_s: num(f[2], "start_s")?,
                end_s: num(f[3], "end_s")?,
                killed: f[4] == "true",
                ready_s: num(f[8], "ready_s")?,
                phase: f[7].to_string(),
                kind,
            });
        }
        Ok(t)
    }
}

const CSV_HEADER: &str =
    "task,core,start_s,end_s,killed,kind,label,phase,ready_s,speculative,from_node,to_node,bytes";

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 1.0);
        t.push(1, 1, 0.0, 0.5);
        t.push(2, 1, 0.5, 2.0);
        t
    }

    #[test]
    fn span_and_utilization() {
        let t = trace();
        assert_eq!(t.span(), 2.0);
        // busy = 1.0 + 0.5 + 1.5 = 3.0 over 2 cores × 2.0s.
        assert!((t.utilization(2) - 0.75).abs() < 1e-12);
        assert_eq!(Trace::default().utilization(2), 0.0);
    }

    #[test]
    fn utilization_excludes_killed_but_busy_fraction_counts_them() {
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 1.0); // useful
        t.push_killed(1, 1, 0.0, 1.0); // lost work
        t.push(2, 1, 1.0, 2.0); // useful rerun
                                // span 2.0, 2 cores: useful = 2.0 of 4.0; occupied = 3.0 of 4.0.
        assert!((t.utilization(2) - 0.5).abs() < 1e-12);
        assert!((t.busy_fraction(2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn non_task_events_do_not_count_as_core_time() {
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 1.0);
        t.record(TraceEvent {
            task: 1,
            core: 0,
            start_s: 0.0,
            end_s: 1.0,
            killed: false,
            ready_s: 0.0,
            phase: "shuffle".into(),
            kind: EventKind::Fetch {
                from_node: 0,
                to_node: 1,
                bytes: 100,
            },
        });
        assert!((t.utilization(1) - 1.0).abs() < 1e-12);
        assert!(!t.gantt(1, 4).contains('x'));
    }

    #[test]
    fn gantt_renders_rows() {
        let g = trace().gantt(2, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("core   0 |#####"));
        assert!(lines[1].contains('#'));
        assert!(lines[2].contains("2.000"));
    }

    #[test]
    fn gantt_zero_duration_event_at_span_boundary_does_not_panic() {
        // Regression: an event with start_s == span produced
        // `a + 1 > width` and the old `clamp(a + 1, width)` panicked.
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 2.0);
        t.push(1, 1, 2.0, 2.0); // zero-duration, exactly at the makespan
        let g = t.gantt(2, 10);
        assert!(g.lines().nth(1).unwrap().ends_with('#'));

        // All-zero-duration trace (Fig. 2 zero-workload shape).
        let mut z = Trace::default();
        z.push(0, 0, 0.0, 0.0);
        z.push(1, 0, 0.0, 0.0);
        let _ = z.gantt(1, 5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = trace().to_csv();
        assert!(csv.starts_with(CSV_HEADER));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn csv_round_trips_all_kinds() {
        let mut t = trace();
        t.push_killed(3, 0, 1.0, 1.25);
        t.record(TraceEvent {
            task: 4,
            core: 1,
            start_s: 0.125,
            end_s: 0.375,
            killed: false,
            ready_s: 0.1,
            phase: "shuffle".into(),
            kind: EventKind::Fetch {
                from_node: 0,
                to_node: 1,
                bytes: 4096,
            },
        });
        t.record(TraceEvent {
            task: 5,
            core: 0,
            start_s: 0.0,
            end_s: 0.5,
            killed: false,
            ready_s: 0.0,
            phase: "broadcast".into(),
            kind: EventKind::Broadcast {
                bytes: 1 << 20,
                dest_nodes: 3,
            },
        });
        t.record(TraceEvent {
            task: 6,
            core: 2,
            start_s: 0.5,
            end_s: 0.75,
            killed: false,
            ready_s: 0.5,
            phase: "recovery".into(),
            kind: EventKind::Recovery {
                label: "recompute".into(),
            },
        });
        t.record(TraceEvent {
            task: 7,
            core: 0,
            start_s: 0.75,
            end_s: 1.0,
            killed: false,
            ready_s: 0.75,
            phase: "shuffle".into(),
            kind: EventKind::Spill {
                node: 1,
                bytes: 2048,
            },
        });
        t.record(TraceEvent {
            task: 8,
            core: 0,
            start_s: 1.0,
            end_s: 1.0,
            killed: false,
            ready_s: 1.0,
            phase: "cache".into(),
            kind: EventKind::Evict {
                node: 0,
                bytes: 512,
            },
        });
        t.record(TraceEvent {
            task: 9,
            core: 3,
            start_s: 1.5,
            end_s: 1.5,
            killed: false,
            ready_s: 1.5,
            phase: "memory".into(),
            kind: EventKind::OomKill { node: 1 },
        });
        let back = Trace::from_csv(&t.to_csv()).expect("round trip");
        assert_eq!(back, t);
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(Trace::from_csv("nope\n1,2,3").is_err());
        let bad_row = format!("{CSV_HEADER}\n1,2,3\n");
        assert!(Trace::from_csv(&bad_row).is_err());
    }

    #[test]
    fn killed_attempts_render_distinctly() {
        let mut t = Trace::default();
        t.push(0, 0, 0.0, 1.0);
        t.push_killed(1, 1, 0.0, 0.5);
        assert!(t.events[1].killed);
        let g = t.gantt(2, 8);
        assert!(g.contains('x'), "killed attempt must render as x:\n{g}");
        assert!(t.to_csv().contains("true"));
    }
}
