//! Chrome-trace / Perfetto JSON export.
//!
//! [`Trace::to_chrome_json`] emits the Trace Event Format that
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly. The
//! document schema (pinned by a golden test):
//!
//! * top level: `{"traceEvents":[...],"displayTimeUnit":"ms"}`;
//! * **pid 0 — "cores"**: one thread per core; every task attempt is a
//!   complete (`"X"`) slice named by its label, with `phase`, `killed`,
//!   `speculative` and `ready_us` in `args`;
//! * **pid 1 — "network"**: one thread per node; shuffle fetches are
//!   slices on the *destination* node's track with a flow arrow
//!   (`"s"`/`"f"` events anchored to a zero-width `send` slice on the
//!   source track), broadcasts are slices on the root's track;
//! * **pid 2 — "driver"**: recovery/recompute windows;
//! * timestamps are microseconds with fixed 3-decimal formatting, so
//!   output is byte-stable across runs of the same schedule.
//!
//! JSON is hand-rolled (the workspace deliberately carries no serde); the
//! strings involved are engine-internal identifiers escaped by
//! [`crate::metrics::escape_json`].

use crate::metrics::escape_json;
use crate::trace::{EventKind, Trace};

const PID_CORES: u32 = 0;
const PID_NETWORK: u32 = 1;
const PID_DRIVER: u32 = 2;

fn us(s: f64) -> String {
    format!("{:.3}", s * 1e6)
}

fn meta(pid: u32, tid: usize, which: &str, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{which}\",\"args\":{{\"name\":\"{}\"}}}}",
        escape_json(name)
    )
}

fn slice(
    pid: u32,
    tid: usize,
    name: &str,
    cat: &str,
    start_s: f64,
    end_s: f64,
    args: &str,
) -> String {
    format!(
        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{cat}\",\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
        escape_json(name),
        us(start_s),
        us(end_s - start_s),
    )
}

impl Trace {
    /// Serialize the trace in Chrome Trace Event Format (see module docs
    /// for the track layout). Load the result in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let mut ev: Vec<String> = Vec::new();
        ev.push(meta(PID_CORES, 0, "process_name", "cores"));
        ev.push(meta(PID_NETWORK, 0, "process_name", "network"));
        ev.push(meta(PID_DRIVER, 0, "process_name", "driver"));
        let mut cores: Vec<usize> = Vec::new();
        let mut nodes: Vec<usize> = Vec::new();
        for e in &self.events {
            match &e.kind {
                EventKind::Task { .. } => {
                    if !cores.contains(&e.core) {
                        cores.push(e.core);
                    }
                }
                EventKind::Fetch {
                    from_node, to_node, ..
                } => {
                    for n in [*from_node, *to_node] {
                        if !nodes.contains(&n) {
                            nodes.push(n);
                        }
                    }
                }
                EventKind::Broadcast { .. } => {
                    if !nodes.contains(&e.core) {
                        nodes.push(e.core);
                    }
                }
                EventKind::Spill { node, .. }
                | EventKind::Evict { node, .. }
                | EventKind::Backpressure { node } => {
                    if !nodes.contains(node) {
                        nodes.push(*node);
                    }
                }
                EventKind::Recovery { .. }
                | EventKind::Fenced { .. }
                | EventKind::OomKill { .. }
                | EventKind::Enqueue { .. }
                | EventKind::Admit { .. }
                | EventKind::Reject { .. } => {}
            }
        }
        cores.sort_unstable();
        nodes.sort_unstable();
        for &c in &cores {
            ev.push(meta(PID_CORES, c, "thread_name", &format!("core {c}")));
        }
        for &n in &nodes {
            ev.push(meta(PID_NETWORK, n, "thread_name", &format!("node {n}")));
        }

        for (id, e) in self.events.iter().enumerate() {
            match &e.kind {
                EventKind::Task { label, speculative } => {
                    let args = format!(
                        "\"phase\":\"{}\",\"killed\":{},\"speculative\":{},\"ready_us\":{}",
                        escape_json(self.phase_of(e)),
                        e.killed,
                        speculative,
                        us(e.ready_s)
                    );
                    ev.push(slice(
                        PID_CORES,
                        e.core,
                        self.resolve(*label),
                        "task",
                        e.start_s,
                        e.end_s,
                        &args,
                    ));
                }
                EventKind::Fetch {
                    from_node,
                    to_node,
                    bytes,
                } => {
                    let args = format!(
                        "\"phase\":\"{}\",\"from_node\":{from_node},\"to_node\":{to_node},\"bytes\":{bytes},\"lost\":{}",
                        escape_json(self.phase_of(e)),
                        e.killed
                    );
                    // The fetch occupies the destination's network track…
                    ev.push(slice(
                        PID_NETWORK,
                        *to_node,
                        "fetch",
                        "fetch",
                        e.start_s,
                        e.end_s,
                        &args,
                    ));
                    // …with an async arrow from a zero-width marker on the
                    // source track (flow events bind to enclosing slices).
                    ev.push(slice(
                        PID_NETWORK,
                        *from_node,
                        "send",
                        "fetch",
                        e.start_s,
                        e.start_s,
                        &args,
                    ));
                    ev.push(format!(
                        "{{\"ph\":\"s\",\"pid\":{PID_NETWORK},\"tid\":{from_node},\"name\":\"xfer\",\"cat\":\"fetch\",\"id\":{id},\"ts\":{}}}",
                        us(e.start_s)
                    ));
                    ev.push(format!(
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{PID_NETWORK},\"tid\":{to_node},\"name\":\"xfer\",\"cat\":\"fetch\",\"id\":{id},\"ts\":{}}}",
                        us(e.end_s)
                    ));
                }
                EventKind::Broadcast { bytes, dest_nodes } => {
                    let args = format!(
                        "\"phase\":\"{}\",\"bytes\":{bytes},\"dest_nodes\":{dest_nodes}",
                        escape_json(self.phase_of(e))
                    );
                    ev.push(slice(
                        PID_NETWORK,
                        e.core,
                        "broadcast",
                        "broadcast",
                        e.start_s,
                        e.end_s,
                        &args,
                    ));
                }
                EventKind::Recovery { label } => {
                    let args = format!("\"phase\":\"{}\"", escape_json(self.phase_of(e)));
                    ev.push(slice(
                        PID_DRIVER,
                        0,
                        self.resolve(*label),
                        "recovery",
                        e.start_s,
                        e.end_s,
                        &args,
                    ));
                }
                EventKind::Fenced { label } => {
                    let args = format!("\"phase\":\"{}\"", escape_json(self.phase_of(e)));
                    ev.push(slice(
                        PID_DRIVER,
                        0,
                        self.resolve(*label),
                        "fenced",
                        e.start_s,
                        e.end_s,
                        &args,
                    ));
                }
                EventKind::Spill { node, bytes } => {
                    let args = format!(
                        "\"phase\":\"{}\",\"node\":{node},\"bytes\":{bytes}",
                        escape_json(self.phase_of(e))
                    );
                    ev.push(slice(
                        PID_NETWORK,
                        *node,
                        "spill",
                        "memory",
                        e.start_s,
                        e.end_s,
                        &args,
                    ));
                }
                EventKind::Evict { node, bytes } => {
                    let args = format!(
                        "\"phase\":\"{}\",\"node\":{node},\"bytes\":{bytes}",
                        escape_json(self.phase_of(e))
                    );
                    ev.push(slice(
                        PID_NETWORK,
                        *node,
                        "evict",
                        "memory",
                        e.start_s,
                        e.end_s,
                        &args,
                    ));
                }
                EventKind::OomKill { node } => {
                    let args = format!(
                        "\"phase\":\"{}\",\"node\":{node}",
                        escape_json(self.phase_of(e))
                    );
                    ev.push(slice(
                        PID_DRIVER, 0, "oom-kill", "memory", e.start_s, e.end_s, &args,
                    ));
                }
                EventKind::Backpressure { node } => {
                    let args = format!(
                        "\"phase\":\"{}\",\"node\":{node}",
                        escape_json(self.phase_of(e))
                    );
                    ev.push(slice(
                        PID_NETWORK,
                        *node,
                        "backpressure",
                        "stream",
                        e.start_s,
                        e.end_s,
                        &args,
                    ));
                }
                // Service-plane events (mdtaskd) render on the driver
                // track like recovery windows.
                EventKind::Enqueue { tenant, job }
                | EventKind::Admit { tenant, job }
                | EventKind::Reject { tenant, job } => {
                    let args = format!(
                        "\"phase\":\"{}\",\"tenant\":{tenant},\"job\":{job}",
                        escape_json(self.phase_of(e))
                    );
                    ev.push(slice(
                        PID_DRIVER,
                        0,
                        e.kind.kind_name(),
                        "service",
                        e.start_s,
                        e.end_s,
                        &args,
                    ));
                }
            }
        }
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
            ev.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent as TE;

    fn task(t: &mut Trace, id: usize, core: usize, start: f64, end: f64, label: &str, phase: &str) {
        let label = t.intern(label);
        let phase = t.intern(phase);
        t.record(TE {
            task: id,
            core,
            start_s: start,
            end_s: end,
            killed: false,
            ready_s: start,
            phase,
            kind: EventKind::Task {
                label,
                speculative: false,
            },
        });
    }

    /// Record a non-task event, interning the phase.
    fn other(
        t: &mut Trace,
        id: usize,
        core: usize,
        span: (f64, f64),
        phase: &str,
        kind: EventKind,
    ) {
        let phase = t.intern(phase);
        t.record(TE {
            task: id,
            core,
            start_s: span.0,
            end_s: span.1,
            killed: false,
            ready_s: span.0,
            phase,
            kind,
        });
    }

    /// A two-stage shuffle job, pinned byte-for-byte: two map tasks, one
    /// cross-node fetch, one reduce task. Any schema change must be made
    /// deliberately, here and in the module docs.
    #[test]
    fn golden_two_stage_shuffle() {
        let mut t = Trace::default();
        task(&mut t, 0, 0, 0.0, 1.0, "map", "stage-0");
        task(&mut t, 1, 1, 0.0, 1.5, "map", "stage-0");
        other(
            &mut t,
            2,
            1,
            (1.5, 2.0),
            "shuffle",
            EventKind::Fetch {
                from_node: 0,
                to_node: 1,
                bytes: 4096,
            },
        );
        task(&mut t, 3, 2, 2.0, 3.0, "reduce", "stage-1");
        let expected = concat!(
            "{\"traceEvents\":[\n",
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"cores\"}},\n",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"network\"}},\n",
            "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"driver\"}},\n",
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"core 0\"}},\n",
            "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"core 1\"}},\n",
            "{\"ph\":\"M\",\"pid\":0,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"core 2\"}},\n",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"node 0\"}},\n",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"node 1\"}},\n",
            "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"map\",\"cat\":\"task\",\"ts\":0.000,\"dur\":1000000.000,\"args\":{\"phase\":\"stage-0\",\"killed\":false,\"speculative\":false,\"ready_us\":0.000}},\n",
            "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"map\",\"cat\":\"task\",\"ts\":0.000,\"dur\":1500000.000,\"args\":{\"phase\":\"stage-0\",\"killed\":false,\"speculative\":false,\"ready_us\":0.000}},\n",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"fetch\",\"cat\":\"fetch\",\"ts\":1500000.000,\"dur\":500000.000,\"args\":{\"phase\":\"shuffle\",\"from_node\":0,\"to_node\":1,\"bytes\":4096,\"lost\":false}},\n",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"send\",\"cat\":\"fetch\",\"ts\":1500000.000,\"dur\":0.000,\"args\":{\"phase\":\"shuffle\",\"from_node\":0,\"to_node\":1,\"bytes\":4096,\"lost\":false}},\n",
            "{\"ph\":\"s\",\"pid\":1,\"tid\":0,\"name\":\"xfer\",\"cat\":\"fetch\",\"id\":2,\"ts\":1500000.000},\n",
            "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":1,\"name\":\"xfer\",\"cat\":\"fetch\",\"id\":2,\"ts\":2000000.000},\n",
            "{\"ph\":\"X\",\"pid\":0,\"tid\":2,\"name\":\"reduce\",\"cat\":\"task\",\"ts\":2000000.000,\"dur\":1000000.000,\"args\":{\"phase\":\"stage-1\",\"killed\":false,\"speculative\":false,\"ready_us\":2000000.000}},\n",
            "],\"displayTimeUnit\":\"ms\"}\n",
        );
        // The last event has no trailing comma; normalise the golden for
        // readability by stripping the one before the closing bracket.
        let expected = expected.replace("}},\n],", "}}\n],");
        assert_eq!(t.to_chrome_json(), expected);
    }

    #[test]
    fn broadcast_and_recovery_tracks() {
        let mut t = Trace::default();
        other(
            &mut t,
            0,
            0,
            (0.0, 0.5),
            "broadcast",
            EventKind::Broadcast {
                bytes: 1024,
                dest_nodes: 3,
            },
        );
        let recompute = t.intern("recompute");
        other(
            &mut t,
            1,
            0,
            (0.5, 0.75),
            "recovery",
            EventKind::Recovery { label: recompute },
        );
        let json = t.to_chrome_json();
        assert!(json.contains("\"name\":\"broadcast\",\"cat\":\"broadcast\""));
        assert!(json.contains("\"dest_nodes\":3"));
        assert!(json.contains("\"pid\":2,\"tid\":0,\"name\":\"recompute\",\"cat\":\"recovery\""));
    }

    #[test]
    fn memory_events_render_on_their_tracks() {
        let mut t = Trace::default();
        other(
            &mut t,
            0,
            0,
            (0.0, 0.25),
            "shuffle",
            EventKind::Spill {
                node: 1,
                bytes: 4096,
            },
        );
        other(
            &mut t,
            1,
            0,
            (0.25, 0.25),
            "cache",
            EventKind::Evict {
                node: 1,
                bytes: 256,
            },
        );
        other(
            &mut t,
            2,
            0,
            (0.5, 0.5),
            "memory",
            EventKind::OomKill { node: 0 },
        );
        let json = t.to_chrome_json();
        assert!(json.contains("\"name\":\"spill\",\"cat\":\"memory\""));
        assert!(json.contains("\"name\":\"evict\",\"cat\":\"memory\""));
        assert!(json.contains("\"pid\":2,\"tid\":0,\"name\":\"oom-kill\",\"cat\":\"memory\""));
        // Spill/evict land on the node's network track.
        assert!(json.contains("\"name\":\"node 1\""));
    }

    #[test]
    fn empty_trace_is_still_a_document() {
        let json = Trace::default().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }
}
