//! Virtual-time streaming: event-time windows, watermarks, backpressure,
//! and per-window lineage recovery.
//!
//! Batch analysis re-reads a finished trajectory; *in-situ* analysis
//! consumes frames while the producer (the MD engine) is still writing
//! them. That changes the correctness contract: the input is unbounded,
//! frames arrive out of order, and "retry from scratch" is not an option.
//! This module provides the shared runner all four engine crates wrap:
//!
//! * **Event time vs. arrival time.** Each frame carries the simulation
//!   clock it was generated at (`event_s`); delivery (`arrive_s`) is
//!   shifted by transport latency, jitter, scripted delays, and producer
//!   stalls. Windows are laid out in *event* time.
//! * **Watermarks.** The watermark is `max(event_s seen) - lateness`: the
//!   pipeline's claim that no frame with an older stamp will still
//!   matter. A window closes when the watermark passes its end. Frames
//!   arriving behind the watermark are *late* and get a typed
//!   [`LateDisposition`] instead of silent loss.
//! * **Backpressure.** Open-window state is charged to the per-node
//!   memory ledger. When the home node's budget is exhausted the runner
//!   pauses ingestion (an [`EventKind::Backpressure`] trace interval) and
//!   waits for a scheduled budget change rather than OOM-killing; if no
//!   change is scheduled, it fails *typed* — never hangs.
//! * **Per-window lineage.** A node death loses exactly the window state
//!   resident there. Recovery replays only the frames covered by the lost
//!   windows, on a surviving node — not the whole job.
//!
//! Everything is placed with declared virtual durations (no host-time
//! measurement), so the resulting [`SimReport`]s are bit-identical at any
//! host thread count.

use std::collections::BTreeMap;

use crate::cluster::Cluster;
use crate::executor::SimExecutor;
use crate::fault::mix;
use crate::policy::{PolicyError, RetryPolicy};
use crate::report::SimReport;

/// Event-time window layout: window `k` covers
/// `[k·slide_s, k·slide_s + window_s)`. `slide_s == window_s` is a
/// tumbling window; `slide_s < window_s` makes windows overlap (a frame
/// belongs to several).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowSpec {
    pub window_s: f64,
    pub slide_s: f64,
    /// Allowed lateness: the watermark trails the newest event stamp by
    /// this much, keeping windows open for mild reordering.
    pub lateness_s: f64,
}

impl WindowSpec {
    /// Non-overlapping windows of `window_s` with `lateness_s` allowance.
    pub fn tumbling(window_s: f64, lateness_s: f64) -> Self {
        Self::sliding(window_s, window_s, lateness_s)
    }

    /// Overlapping windows: one opens every `slide_s`.
    pub fn sliding(window_s: f64, slide_s: f64, lateness_s: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        assert!(slide_s > 0.0, "slide must be positive");
        assert!(
            slide_s <= window_s,
            "slide beyond the window would drop frames by construction"
        );
        assert!(lateness_s >= 0.0, "lateness must be non-negative");
        WindowSpec {
            window_s,
            slide_s,
            lateness_s,
        }
    }

    pub fn start_of(&self, id: usize) -> f64 {
        id as f64 * self.slide_s
    }

    pub fn end_of(&self, id: usize) -> f64 {
        self.start_of(id) + self.window_s
    }

    /// Inclusive id range of the windows covering an event stamp. The
    /// epsilon absorbs float noise when stamps land exactly on window
    /// boundaries (starts are inclusive, ends exclusive).
    pub fn ids_for(&self, event_s: f64) -> (usize, usize) {
        const EPS: f64 = 1e-9;
        let hi = ((event_s + EPS) / self.slide_s).floor().max(0.0) as usize;
        let lo = ((event_s - self.window_s) / self.slide_s + EPS).floor() + 1.0;
        (lo.max(0.0) as usize, hi)
    }
}

/// What happens to a frame that arrives behind the watermark, after its
/// window(s) already closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LateDisposition {
    /// Merge the frame into the already-emitted window result and mark the
    /// result amended (corrected-result semantics). Falls back to the side
    /// channel when the window never produced a result to amend.
    Absorb,
    /// Keep the window result as emitted; route the late frame to a typed
    /// side-channel record the caller can inspect.
    SideChannel,
    /// Drop the frame with a typed rejection record.
    Reject,
}

/// How an engine turns accepted frames into simulated compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchMode {
    /// One barrier-free task per frame (dasklet).
    PerFrame,
    /// Buffer `n` frames, dispatch them as one stage (sparklet).
    MicroBatch(usize),
    /// No per-frame tasks; one compute unit per closing window, re-submitted
    /// continuously (pilot).
    UnitPerWindow,
    /// A ring buffer of `n` slots; a full ring dispatches as one collective
    /// step, and the next step waits for it (mpilike).
    RingCollective(usize),
}

/// The full streaming job description an engine wrapper hands the runner.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    pub window: WindowSpec,
    pub late: LateDisposition,
    pub mode: DispatchMode,
    /// Declared virtual compute per frame. Declared — not measured — so
    /// reports are bit-identical across host thread counts.
    pub frame_cost_s: f64,
    /// Resident window state charged to the home node's memory ledger per
    /// (frame, window) membership, released when the window closes.
    pub state_bytes_per_frame: u64,
    /// Driver overhead charged per dispatch act (frame, batch, or unit).
    pub dispatch_overhead_s: f64,
}

/// The engine-agnostic half of a streaming job: what the *user* chooses
/// (window layout, late-frame policy, declared per-frame cost and state
/// footprint). Engines complete it into a [`StreamSpec`] with their own
/// dispatch mode and driver overhead.
#[derive(Clone, Debug)]
pub struct StreamJob {
    pub window: WindowSpec,
    pub late: LateDisposition,
    pub frame_cost_s: f64,
    pub state_bytes_per_frame: u64,
}

impl StreamJob {
    pub fn new(window: WindowSpec) -> Self {
        StreamJob {
            window,
            late: LateDisposition::SideChannel,
            frame_cost_s: 0.01,
            state_bytes_per_frame: 1 << 20,
        }
    }

    pub fn late(mut self, late: LateDisposition) -> Self {
        self.late = late;
        self
    }

    pub fn frame_cost(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "frame cost must be non-negative");
        self.frame_cost_s = secs;
        self
    }

    pub fn state_bytes(mut self, bytes: u64) -> Self {
        self.state_bytes_per_frame = bytes;
        self
    }

    /// Complete the job into a runnable spec with an engine's dispatch
    /// posture.
    pub fn spec(&self, mode: DispatchMode, dispatch_overhead_s: f64) -> StreamSpec {
        StreamSpec {
            window: self.window,
            late: self.late,
            mode,
            frame_cost_s: self.frame_cost_s,
            state_bytes_per_frame: self.state_bytes_per_frame,
            dispatch_overhead_s,
        }
    }
}

/// One delivery observed by the consumer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamEvent {
    pub frame: usize,
    /// Producer's simulation clock stamped on the frame.
    pub event_s: f64,
    /// Virtual time the frame reaches the consumer.
    pub arrive_s: f64,
    /// A duplicate delivery of a frame already sent (at-least-once
    /// transport); consumers must dedup.
    pub duplicate: bool,
}

/// The ground-truth delivery schedule a [`StreamSource`] produced: what
/// arrived when, what was lost in transit, and whether the producer
/// crashed. The chaos oracles compare pipeline output against this.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SourceLog {
    /// Deliveries sorted by `(arrive_s, frame, duplicate)`.
    pub events: Vec<StreamEvent>,
    /// Frames lost in transit (scripted or probabilistic drops).
    pub dropped: Vec<usize>,
    /// Producer crash time, if the plan crashed it. Frames not emitted by
    /// then are in `undelivered`, and the consumer never sees EOS.
    pub crashed_at: Option<f64>,
    /// Frames never emitted because of the crash.
    pub undelivered: Vec<usize>,
    pub n_frames: usize,
    /// Nominal event-time spacing between frames.
    pub interval_s: f64,
}

impl SourceLog {
    /// A fault-free schedule: frame `i` stamped `i·interval_s`, arriving
    /// `latency_s` later, in order.
    pub fn clean(n_frames: usize, interval_s: f64, latency_s: f64) -> SourceLog {
        SourceLog {
            events: (0..n_frames)
                .map(|i| StreamEvent {
                    frame: i,
                    event_s: i as f64 * interval_s,
                    arrive_s: i as f64 * interval_s + latency_s,
                    duplicate: false,
                })
                .collect(),
            dropped: Vec::new(),
            crashed_at: None,
            undelivered: Vec::new(),
            n_frames,
            interval_s,
        }
    }

    /// Newest event stamp among deliveries that arrived by `t` — the
    /// source-side watermark an ideal consumer could have reached.
    pub fn max_event_arrived_by(&self, t: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.arrive_s <= t)
            .map(|e| e.event_s)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A late frame's typed record: which window it missed and by how much.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LateRecord {
    pub frame: usize,
    pub window: usize,
    pub event_s: f64,
    pub arrive_s: f64,
}

/// One closed event-time window.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowResult {
    pub id: usize,
    pub start_s: f64,
    pub end_s: f64,
    /// Member frames, sorted. Amendments (late absorbs) extend this after
    /// close and set `amended`.
    pub frames: Vec<usize>,
    /// Deterministic fold of member frame values, in frame order.
    pub value: u64,
    /// Virtual time the result was emitted (watermark passage plus any
    /// compute still in flight for the window).
    pub close_s: f64,
    /// Node whose ledger held the window state at close.
    pub node: usize,
    /// Window state was lost to a node death and rebuilt by replaying
    /// exactly this window's frames.
    pub replayed: bool,
    /// A late frame was absorbed after the result was emitted.
    pub amended: bool,
    /// Closed by the end-of-stream flush rather than watermark passage.
    pub closed_by_flush: bool,
}

/// Everything a streaming run produced, next to the executor's
/// [`SimReport`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamOutput {
    /// Closed windows, in close order.
    pub windows: Vec<WindowResult>,
    /// Late frames routed to the side channel.
    pub late: Vec<LateRecord>,
    /// Late frames rejected.
    pub rejected: Vec<LateRecord>,
    /// Late frames absorbed into an already-emitted result.
    pub absorbed: Vec<LateRecord>,
    /// Duplicate deliveries dropped by dedup.
    pub duplicates_dropped: usize,
    /// `(virtual time, watermark)` samples, one per advance.
    pub watermarks: Vec<(f64, f64)>,
    pub final_watermark: f64,
    /// Unique frames accepted on time.
    pub frames_accepted: usize,
    /// Frame replays performed for lost window state.
    pub frames_replayed: usize,
    pub backpressure_pauses: usize,
    pub backpressure_wait_s: f64,
}

/// Why a streaming run stopped without a complete output. Engines map
/// these onto their typed `EngineError`s.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamError {
    /// No progress is possible: the producer crashed with windows still
    /// open, or backpressure has nothing scheduled to wait for. `at_s` is
    /// when the deadline watchdog fired (or the stall was proven).
    Stalled { at_s: f64, open_windows: usize },
    /// The retry policy gave up (deadline, retries, timeout, no survivors).
    Policy(PolicyError),
    /// Window state cannot fit and no budget change is scheduled.
    Memory {
        node: usize,
        budget: u64,
        required: u64,
        at_s: f64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Stalled { at_s, open_windows } => write!(
                f,
                "stream stalled at {at_s:.3}s with {open_windows} open window(s)"
            ),
            StreamError::Policy(e) => write!(f, "stream policy failure: {e}"),
            StreamError::Memory {
                node,
                budget,
                required,
                at_s,
            } => write!(
                f,
                "window state needs {required} bytes on node {node} but only \
                 {budget} remain at {at_s:.3}s and no budget change is scheduled"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<PolicyError> for StreamError {
    fn from(e: PolicyError) -> Self {
        StreamError::Policy(e)
    }
}

/// Open-window bookkeeping while the watermark has not passed its end.
struct OpenWindow {
    frames: Vec<usize>,
    node: usize,
    reserved: u64,
    /// Latest completion time of compute attributable to this window.
    work_done_s: f64,
    replayed: bool,
}

struct Runner<'a> {
    exec: &'a mut SimExecutor,
    spec: &'a StreamSpec,
    policy: &'a RetryPolicy,
    frame_value: &'a mut dyn FnMut(usize) -> u64,
    out: StreamOutput,
    open: BTreeMap<usize, OpenWindow>,
    /// Unique frames already processed (dedup set).
    seen: Vec<bool>,
    values: BTreeMap<usize, u64>,
    /// Per-frame compute completion time (for modes with frame tasks).
    frame_done: BTreeMap<usize, f64>,
    /// Frames buffered by MicroBatch / RingCollective, with ready times.
    buffer: Vec<(usize, f64)>,
    /// A full ring step gates the next one.
    ring_free_s: f64,
    watermark: f64,
    /// Ingestion clock: arrival processing is serialized and pushed back
    /// by backpressure pauses.
    ingest_free_s: f64,
    /// Close time of the last emitted result — the ordered output
    /// channel's high-water mark.
    last_close_s: f64,
    handled_deaths: Vec<usize>,
    /// Partition indices whose false-positive suspicion has already been
    /// acted on (window replay + fence) — the exactly-once guard.
    handled_partitions: Vec<usize>,
    faults: FaultPlan,
}

use crate::fault::FaultPlan;

impl<'a> Runner<'a> {
    fn cluster(&self) -> &Cluster {
        self.exec.cluster()
    }

    fn alive(&self, node: usize, at_s: f64) -> bool {
        self.faults.node_death(node).is_none_or(|d| d > at_s)
    }

    fn value_of(&mut self, frame: usize) -> u64 {
        if let Some(&v) = self.values.get(&frame) {
            return v;
        }
        let v = (self.frame_value)(frame);
        self.values.insert(frame, v);
        v
    }

    fn fold_value(&mut self, frames: &[usize]) -> u64 {
        let mut acc = 0x9e37_79b9_7f4a_7c15u64;
        for &f in frames {
            let v = self.value_of(f);
            acc = mix(acc ^ mix(f as u64) ^ v);
        }
        acc
    }

    /// Reserve `bytes` of window state. `home` pins the reservation to an
    /// existing window's node; otherwise any node alive at the time may
    /// host. Blocks (virtually) through scheduled budget changes when
    /// nothing fits now — recording the pause as backpressure — and fails
    /// typed when the schedule is exhausted.
    fn reserve_state(
        &mut self,
        bytes: u64,
        now: f64,
        home: Option<usize>,
        exclude: Option<usize>,
    ) -> Result<(usize, f64), StreamError> {
        let nodes = self.cluster().nodes;
        let candidates: Vec<usize> = match home {
            Some(n) => vec![n],
            None => (0..nodes).filter(|&n| Some(n) != exclude).collect(),
        };
        // A pinned home may already be dead without the driver knowing
        // (heartbeat not yet fired): the write "succeeds" from the
        // consumer's view and the state is replayed once the death is
        // detected. Fresh placements only go to nodes believed alive.
        let pinned = home.is_some();
        let has_parts = self.faults.has_partitions();
        let mut t = now;
        loop {
            for &n in &candidates {
                // Fresh placements additionally avoid nodes the driver
                // cannot currently reach — state written across a cut
                // would immediately be stranded.
                let reachable = !has_parts || pinned || self.faults.can_reach(0, n, t);
                if (pinned || self.alive(n, t))
                    && reachable
                    && self.exec.try_reserve_memory(n, bytes, t)
                {
                    if t > now {
                        self.exec.record_backpressure(n, now, t);
                        self.out.backpressure_pauses += 1;
                        self.out.backpressure_wait_s += t - now;
                        self.ingest_free_s = self.ingest_free_s.max(t);
                    }
                    return Ok((n, t));
                }
            }
            // Advance to whatever changes the picture next: a scheduled
            // memory-budget change, or a cut healing and re-admitting a
            // candidate node.
            let next_heal = if has_parts && !pinned {
                candidates
                    .iter()
                    .filter_map(|&n| self.faults.cut_between(0, n, t).map(|(_, h)| h))
                    .fold(None, |acc: Option<f64>, h| {
                        Some(acc.map_or(h, |a| a.min(h)))
                    })
            } else {
                None
            };
            let next = match (self.faults.next_mem_change_after(t), next_heal) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
            match next {
                Some(t2) => t = t2,
                None => {
                    // Nothing scheduled can ever make room: fail typed.
                    if let Some(d) = self.policy.deadline_s {
                        return Err(StreamError::Stalled {
                            at_s: d.max(now),
                            open_windows: self.open.len() + usize::from(home.is_none()),
                        });
                    }
                    let n = *candidates
                        .iter()
                        .find(|&&n| self.alive(n, t))
                        .unwrap_or(&candidates[0]);
                    return Err(StreamError::Memory {
                        node: n,
                        budget: self
                            .cluster()
                            .mem_budget(n, t)
                            .saturating_sub(self.exec.mem_resident(n)),
                        required: bytes,
                        at_s: now,
                    });
                }
            }
        }
    }

    /// Dispatch one frame's compute per the engine's mode. Buffered modes
    /// only enqueue here; [`Self::flush_buffer`] places the tasks.
    fn dispatch_frame(&mut self, frame: usize, now: f64) -> Result<(), StreamError> {
        match self.spec.mode {
            DispatchMode::PerFrame => {
                self.exec.set_task_label("stream-frame");
                let ready = now + self.spec.dispatch_overhead_s;
                self.exec.report_mut().overhead_s += self.spec.dispatch_overhead_s;
                let p = self
                    .exec
                    .run_task_policied(ready, self.spec.frame_cost_s, self.policy)?;
                self.frame_done.insert(frame, p.end);
            }
            DispatchMode::MicroBatch(n) => {
                self.buffer.push((frame, now));
                if self.buffer.len() >= n.max(1) {
                    self.flush_buffer()?;
                }
            }
            DispatchMode::UnitPerWindow => {
                // Frames only accumulate state; compute happens as one
                // unit when the window closes.
            }
            DispatchMode::RingCollective(n) => {
                self.buffer.push((frame, now));
                if self.buffer.len() >= n.max(1) {
                    self.flush_buffer()?;
                }
            }
        }
        Ok(())
    }

    /// Place every buffered frame as one dispatch step.
    fn flush_buffer(&mut self) -> Result<(), StreamError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let buffered = std::mem::take(&mut self.buffer);
        let newest = buffered.iter().map(|&(_, t)| t).fold(0.0, f64::max);
        let (label, ready) = match self.spec.mode {
            DispatchMode::MicroBatch(_) => {
                // One driver dispatch per micro-batch, stage-style.
                self.exec.report_mut().overhead_s += self.spec.dispatch_overhead_s;
                ("stream-batch", newest + self.spec.dispatch_overhead_s)
            }
            DispatchMode::RingCollective(_) => {
                // The ring is synchronous: a step cannot start before the
                // previous one drained.
                ("stream-ring", newest.max(self.ring_free_s))
            }
            _ => ("stream-frame", newest),
        };
        self.exec.set_task_label(label);
        let mut step_end = ready;
        for (frame, _) in buffered {
            let p = self
                .exec
                .run_task_policied(ready, self.spec.frame_cost_s, self.policy)?;
            self.frame_done.insert(frame, p.end);
            step_end = step_end.max(p.end);
        }
        if matches!(self.spec.mode, DispatchMode::RingCollective(_)) {
            self.ring_free_s = step_end;
        }
        Ok(())
    }

    /// Notice deaths the heartbeat has surfaced by `now` and replay the
    /// window state that died with the node: per-window lineage, only the
    /// frames the lost windows covered.
    fn handle_deaths_up_to(&mut self, now: f64) -> Result<(), StreamError> {
        let deaths: Vec<_> = self
            .faults
            .deaths()
            .iter()
            .filter(|d| d.at_s + self.policy.detection_delay_s <= now)
            .filter(|d| !self.handled_deaths.contains(&d.node))
            .map(|d| (d.node, d.at_s))
            .collect();
        for (node, died_at) in deaths {
            self.handled_deaths.push(node);
            let detected = died_at + self.policy.detection_delay_s;
            let lost: Vec<usize> = self
                .open
                .iter()
                .filter(|(_, w)| w.node == node)
                .map(|(&id, _)| id)
                .collect();
            for wid in lost {
                let (reserved, frames) = {
                    let w = &self.open[&wid];
                    (w.reserved, w.frames.clone())
                };
                // The dead node's ledger entries are gone with it.
                self.exec.release_memory(node, reserved);
                let (new_node, ready) = self.reserve_state(reserved, detected, None, Some(node))?;
                self.exec
                    .record_recovery("window-replay", died_at, ready.max(detected));
                self.exec.set_task_label("stream-replay");
                let mut done = 0.0f64;
                for &f in &frames {
                    let p =
                        self.exec
                            .run_task_policied(ready, self.spec.frame_cost_s, self.policy)?;
                    done = done.max(p.end);
                    let e = self.frame_done.entry(f).or_insert(0.0);
                    *e = e.max(p.end);
                }
                self.out.frames_replayed += frames.len();
                self.exec.report_mut().recomputed_partitions += frames.len();
                let w = self.open.get_mut(&wid).expect("window is open");
                w.node = new_node;
                w.replayed = true;
                w.work_done_s = w.work_done_s.max(done);
            }
        }
        Ok(())
    }

    /// Notice partitions the suspicion detector has (falsely) given up on
    /// by `now` and re-home the window state stranded behind the cut. The
    /// stranded node is *alive*: its replica keeps accumulating until
    /// heal, when its duplicate window contribution arrives under a stale
    /// window epoch and is fenced — exactly once per stranded window, so
    /// no frame is double-counted. A cut the detector waits out
    /// (`suspect_time ≥ heal`) replays nothing: the state was never given
    /// up on.
    fn handle_partitions_up_to(&mut self, now: f64) -> Result<(), StreamError> {
        if !self.faults.has_partitions() {
            return Ok(());
        }
        let Some(det) = self.policy.detector() else {
            return Ok(());
        };
        let parts = self.faults.partitions().to_vec();
        for (i, p) in parts.iter().enumerate() {
            let suspect = det.suspect_time(p.from_s);
            if suspect >= p.to_s || suspect > now || self.handled_partitions.contains(&i) {
                continue;
            }
            self.handled_partitions.push(i);
            let stranded: Vec<usize> = self
                .open
                .iter()
                .filter(|(_, w)| p.separates(0, w.node))
                .map(|(&id, _)| id)
                .collect();
            for wid in stranded {
                let (node, reserved, frames) = {
                    let w = &self.open[&wid];
                    (w.node, w.reserved, w.frames.clone())
                };
                // The driver writes off the stranded replica (its ledger
                // entry is released on suspicion) and rebuilds the window
                // from lineage on a reachable node.
                self.exec.release_memory(node, reserved);
                let (new_node, ready) = self.reserve_state(reserved, suspect, None, Some(node))?;
                self.exec
                    .record_recovery("window-replay", p.from_s, ready.max(suspect));
                self.exec.set_task_label("stream-replay");
                let mut done = 0.0f64;
                for &f in &frames {
                    let pl =
                        self.exec
                            .run_task_policied(ready, self.spec.frame_cost_s, self.policy)?;
                    done = done.max(pl.end);
                    let e = self.frame_done.entry(f).or_insert(0.0);
                    *e = e.max(pl.end);
                }
                self.out.frames_replayed += frames.len();
                self.exec.report_mut().recomputed_partitions += frames.len();
                // The zombie replica's contribution is rejected at heal.
                self.exec.record_fenced("window-duplicate", suspect, p.to_s);
                let w = self.open.get_mut(&wid).expect("window is open");
                w.node = new_node;
                w.replayed = true;
                w.work_done_s = w.work_done_s.max(done);
            }
        }
        Ok(())
    }

    /// Close every open window the watermark has passed, in end order.
    fn close_ripe_windows(&mut self, trigger_s: f64, flush: bool) -> Result<(), StreamError> {
        loop {
            let ripe = self
                .open
                .iter()
                .filter(|(&id, _)| flush || self.spec.window.end_of(id) <= self.watermark)
                .map(|(&id, _)| id)
                .min_by(|a, b| {
                    self.spec
                        .window
                        .end_of(*a)
                        .total_cmp(&self.spec.window.end_of(*b))
                });
            let Some(wid) = ripe else { return Ok(()) };
            // Buffered frames may belong to the closing window: drain the
            // buffer so their completion times are known.
            self.flush_buffer()?;
            let mut w = self.open.remove(&wid).expect("window is open");
            w.frames.sort_unstable();
            let mut close_s = trigger_s.max(w.work_done_s);
            if let DispatchMode::UnitPerWindow = self.spec.mode {
                // Continuous unit re-submission: the window's compute runs
                // as one unit when it closes.
                self.exec.set_task_label("stream-unit");
                self.exec.report_mut().overhead_s += self.spec.dispatch_overhead_s;
                let dur = w.frames.len() as f64 * self.spec.frame_cost_s;
                let p = self.exec.run_task_policied(
                    trigger_s + self.spec.dispatch_overhead_s,
                    dur,
                    self.policy,
                )?;
                close_s = close_s.max(p.end);
            } else {
                for &f in &w.frames {
                    if let Some(&d) = self.frame_done.get(&f) {
                        close_s = close_s.max(d);
                    }
                }
            }
            // Ordered output channel: results are emitted in window order,
            // so a small window whose unit finished early still waits for
            // its slower predecessor (observed under straggler replay in
            // the UnitPerWindow posture). Keeps emitted close times
            // monotone, which downstream consumers and the staleness
            // oracle rely on.
            close_s = close_s.max(self.last_close_s);
            self.last_close_s = close_s;
            self.exec.release_memory(w.node, w.reserved);
            let value = self.fold_value(&w.frames);
            self.exec.advance_makespan(close_s);
            self.out.windows.push(WindowResult {
                id: wid,
                start_s: self.spec.window.start_of(wid),
                end_s: self.spec.window.end_of(wid),
                frames: w.frames,
                value,
                close_s,
                node: w.node,
                replayed: w.replayed,
                amended: false,
                closed_by_flush: flush,
            });
        }
    }

    /// Route one late `(frame, window)` membership per the disposition.
    fn handle_late(&mut self, frame: usize, wid: usize, ev: &StreamEvent, now: f64) {
        let rec = LateRecord {
            frame,
            window: wid,
            event_s: ev.event_s,
            arrive_s: ev.arrive_s,
        };
        match self.spec.late {
            LateDisposition::Absorb => {
                let pos = self.out.windows.iter().position(|w| w.id == wid);
                match pos {
                    Some(i) => {
                        let value = {
                            let mut frames = self.out.windows[i].frames.clone();
                            frames.push(frame);
                            frames.sort_unstable();
                            self.out.windows[i].frames = frames.clone();
                            self.fold_value(&frames)
                        };
                        let w = &mut self.out.windows[i];
                        w.value = value;
                        w.amended = true;
                        // The amendment costs one frame of compute.
                        self.exec.set_task_label("stream-absorb");
                        let _ = self.exec.run_task(now, self.spec.frame_cost_s);
                        self.out.absorbed.push(rec);
                    }
                    // Nothing to amend (the window never opened): the
                    // side channel keeps the frame typed instead of lost.
                    None => self.out.late.push(rec),
                }
            }
            LateDisposition::SideChannel => self.out.late.push(rec),
            LateDisposition::Reject => self.out.rejected.push(rec),
        }
    }

    fn run(&mut self, source: &SourceLog) -> Result<(), StreamError> {
        let events = source.events.clone();
        let mut last_now = self.ingest_free_s;
        for ev in &events {
            let now = ev.arrive_s.max(self.ingest_free_s);
            if let Some(d) = self.policy.deadline_s {
                if now > d {
                    return Err(StreamError::Policy(PolicyError::DeadlineExceeded {
                        deadline_s: d,
                        at_s: now,
                    }));
                }
            }
            self.handle_deaths_up_to(now)?;
            self.handle_partitions_up_to(now)?;
            if ev.frame >= self.seen.len() {
                self.seen.resize(ev.frame + 1, false);
            }
            if self.seen[ev.frame] {
                // Duplicate delivery (flagged or replayed): dedup.
                self.out.duplicates_dropped += 1;
                continue;
            }
            self.seen[ev.frame] = true;
            let (lo, hi) = self.spec.window.ids_for(ev.event_s);
            let mut accepted = false;
            for wid in lo..=hi {
                let closed = self.out.windows.iter().any(|w| w.id == wid);
                let late = closed
                    || (!self.open.contains_key(&wid)
                        && self.spec.window.end_of(wid) <= self.watermark);
                if late {
                    self.handle_late(ev.frame, wid, ev, now);
                    continue;
                }
                // On time for this window: charge state, join, compute.
                let bytes = self.spec.state_bytes_per_frame;
                if let Some(w) = self.open.get(&wid) {
                    let home = w.node;
                    let (_, _t) = self.reserve_state(bytes, now, Some(home), None)?;
                    let w = self.open.get_mut(&wid).expect("open");
                    w.frames.push(ev.frame);
                    w.reserved += bytes;
                } else {
                    let (node, _t) = self.reserve_state(bytes, now, None, None)?;
                    self.open.insert(
                        wid,
                        OpenWindow {
                            frames: vec![ev.frame],
                            node,
                            reserved: bytes,
                            work_done_s: 0.0,
                            replayed: false,
                        },
                    );
                }
                accepted = true;
            }
            if accepted {
                self.out.frames_accepted += 1;
                let now = ev.arrive_s.max(self.ingest_free_s);
                self.dispatch_frame(ev.frame, now)?;
            }
            // Advance the watermark and close what it passed.
            let wm = (ev.event_s - self.spec.window.lateness_s).max(self.watermark);
            if wm > self.watermark {
                self.watermark = wm;
                self.out.watermarks.push((now, wm));
            }
            last_now = now.max(last_now);
            self.close_ripe_windows(last_now, false)?;
        }
        self.handle_deaths_up_to(last_now)?;
        self.handle_partitions_up_to(last_now)?;
        if !self.open.is_empty() || !self.buffer.is_empty() {
            if source.crashed_at.is_some() {
                // The producer died mid-stream: the frames that would
                // advance the watermark never arrive, and no EOS marker
                // is coming. The deadline watchdog turns the would-be
                // hang into a typed stall.
                let at_s = self
                    .policy
                    .deadline_s
                    .unwrap_or(last_now + self.policy.detection_delay_s.max(1.0));
                return Err(StreamError::Stalled {
                    at_s,
                    open_windows: self.open.len(),
                });
            }
            // Clean end of stream: the producer's EOS marker lets the
            // consumer flush everything still open.
            self.watermark = f64::INFINITY;
            self.close_ripe_windows(last_now, true)?;
        }
        self.out.final_watermark = self.watermark;
        Ok(())
    }
}

/// Run a streaming job against a delivery schedule. `frame_value` supplies
/// the per-frame analysis value (real computation; its *cost* in virtual
/// time is `spec.frame_cost_s`). On success the executor's report carries
/// the placement/trace side; the returned [`StreamOutput`] carries window
/// results and typed late/duplicate accounting.
pub fn run_stream(
    exec: &mut SimExecutor,
    source: &SourceLog,
    spec: &StreamSpec,
    policy: &RetryPolicy,
    frame_value: &mut dyn FnMut(usize) -> u64,
) -> Result<StreamOutput, StreamError> {
    let start = exec.all_idle_at();
    let faults = exec.cluster().faults().clone();
    let mut runner = Runner {
        exec,
        spec,
        policy,
        frame_value,
        out: StreamOutput::default(),
        open: BTreeMap::new(),
        seen: Vec::new(),
        values: BTreeMap::new(),
        frame_done: BTreeMap::new(),
        buffer: Vec::new(),
        ring_free_s: 0.0,
        watermark: f64::NEG_INFINITY,
        ingest_free_s: start,
        last_close_s: 0.0,
        handled_deaths: Vec::new(),
        handled_partitions: Vec::new(),
        faults,
    };
    runner.run(source)?;
    Ok(runner.out)
}

/// Stream oracles: the correctness contract a run must satisfy no matter
/// what faults were injected. Returns the first violation, or `None`.
///
/// * **No silent loss** — every unique delivered frame is reflected, for
///   each window covering its stamp, in exactly one of: the window's
///   result, a side-channel late record, or a typed rejection.
/// * **Watermark monotonicity** — watermark samples and closed-window
///   ends/close times never regress.
/// * **Bounded staleness** — a result is emitted within
///   `window + lateness + slack_s` of the source watermark at its close
///   (flush-closed windows are exempt: EOS closes the tail by fiat).
pub fn check_stream_invariants(
    source: &SourceLog,
    spec: &StreamSpec,
    out: &StreamOutput,
    slack_s: f64,
) -> Option<String> {
    // Dedup accounting.
    let mut first_delivery: BTreeMap<usize, &StreamEvent> = BTreeMap::new();
    for e in &source.events {
        first_delivery.entry(e.frame).or_insert(e);
    }
    let expected_dups = source.events.len() - first_delivery.len();
    if out.duplicates_dropped != expected_dups {
        return Some(format!(
            "dedup mismatch: {} duplicates dropped, schedule delivered {}",
            out.duplicates_dropped, expected_dups
        ));
    }
    // Unique window results.
    let mut by_id: BTreeMap<usize, &WindowResult> = BTreeMap::new();
    for w in &out.windows {
        if by_id.insert(w.id, w).is_some() {
            return Some(format!("window {} closed twice", w.id));
        }
    }
    // No silent loss.
    for (&frame, ev) in &first_delivery {
        let (lo, hi) = spec.window.ids_for(ev.event_s);
        for wid in lo..=hi {
            let in_result = by_id
                .get(&wid)
                .is_some_and(|w| w.frames.binary_search(&frame).is_ok());
            let in_late = out.late.iter().any(|r| r.frame == frame && r.window == wid);
            let in_rejected = out
                .rejected
                .iter()
                .any(|r| r.frame == frame && r.window == wid);
            let in_absorbed = out
                .absorbed
                .iter()
                .any(|r| r.frame == frame && r.window == wid);
            let covered = in_result || in_late || in_rejected;
            if !covered {
                return Some(format!(
                    "silent loss: frame {frame} (event {:.3}s) has no \
                     disposition for window {wid}",
                    ev.event_s
                ));
            }
            if in_result && (in_late || in_rejected) {
                return Some(format!(
                    "double counting: frame {frame} is both in window {wid}'s \
                     result and in a late/reject record"
                ));
            }
            if in_absorbed && !in_result {
                return Some(format!(
                    "absorb lost: frame {frame} marked absorbed into window \
                     {wid} but missing from its result"
                ));
            }
        }
    }
    // Watermark monotonicity.
    for pair in out.watermarks.windows(2) {
        if pair[1].1 < pair[0].1 || pair[1].0 < pair[0].0 {
            return Some(format!(
                "watermark regressed: {:?} then {:?}",
                pair[0], pair[1]
            ));
        }
    }
    for pair in out.windows.windows(2) {
        if pair[1].end_s < pair[0].end_s {
            return Some(format!(
                "close order regressed: window {} (end {:.3}s) closed after \
                 window {} (end {:.3}s)",
                pair[1].id, pair[1].end_s, pair[0].id, pair[0].end_s
            ));
        }
        if pair[1].close_s < pair[0].close_s {
            return Some(format!(
                "close time regressed: window {} closed at {:.3}s after \
                 window {} at {:.3}s",
                pair[1].id, pair[1].close_s, pair[0].id, pair[0].close_s
            ));
        }
    }
    // Bounded staleness.
    let bound = spec.window.window_s + spec.window.lateness_s + slack_s;
    for w in out.windows.iter().filter(|w| !w.closed_by_flush) {
        let src = source.max_event_arrived_by(w.close_s);
        if src.is_finite() && src - w.end_s > bound {
            return Some(format!(
                "staleness: window {} (end {:.3}s) closed at {:.3}s when the \
                 source watermark was already {:.3}s — lag {:.3}s exceeds \
                 bound {:.3}s",
                w.id,
                w.end_s,
                w.close_s,
                src,
                src - w.end_s,
                bound
            ));
        }
    }
    None
}

/// Convenience wrapper returned by engine streaming entry points.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamRun {
    pub output: StreamOutput,
    pub report: SimReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{laptop, Cluster};

    fn spec(mode: DispatchMode) -> StreamSpec {
        StreamSpec {
            window: WindowSpec::tumbling(1.0, 0.25),
            late: LateDisposition::SideChannel,
            mode,
            frame_cost_s: 0.01,
            state_bytes_per_frame: 1 << 20,
            dispatch_overhead_s: 1e-3,
        }
    }

    fn run_with(
        faults: FaultPlan,
        source: &SourceLog,
        spec: &StreamSpec,
        policy: &RetryPolicy,
    ) -> Result<(StreamOutput, SimReport), StreamError> {
        run_with_nodes(faults, 2, source, spec, policy)
    }

    fn run_with_nodes(
        faults: FaultPlan,
        nodes: usize,
        source: &SourceLog,
        spec: &StreamSpec,
        policy: &RetryPolicy,
    ) -> Result<(StreamOutput, SimReport), StreamError> {
        let cluster = Cluster::new(laptop(), nodes).with_faults(faults);
        let mut exec = SimExecutor::new(cluster);
        exec.enable_trace();
        let out = run_stream(&mut exec, source, spec, policy, &mut |f| mix(f as u64))?;
        Ok((out, exec.into_report()))
    }

    #[test]
    fn emission_stays_ordered_when_a_straggler_slows_a_replayed_unit() {
        // Shrunk chaos counterexample (exp_stream seed 41): node 0 dies
        // mid-stream, forcing the open windows onto node 1 where a 7.9x
        // straggler core slows one window's unit — without an ordered
        // output channel the next (smaller) window's unit finished first
        // and close times regressed.
        let plan = FaultPlan::none().kill_node(0, 9.0679).slow_core(8, 7.923);
        let source = SourceLog::clean(96, 0.25, 0.02);
        let sp = StreamSpec {
            window: WindowSpec::tumbling(2.0, 0.25),
            late: LateDisposition::SideChannel,
            mode: DispatchMode::UnitPerWindow,
            frame_cost_s: 0.05,
            state_bytes_per_frame: 1 << 20,
            dispatch_overhead_s: 1e-3,
        };
        let policy = RetryPolicy::new(4).with_detection_delay(0.25);
        let (out, _) = run_with(plan, &source, &sp, &policy).expect("recoverable");
        for w in out.windows.windows(2) {
            assert!(
                w[1].close_s >= w[0].close_s,
                "close regressed: window {} at {:.3} after window {} at {:.3}",
                w[1].id,
                w[1].close_s,
                w[0].id,
                w[0].close_s
            );
        }
        assert!(out.frames_replayed > 0, "the death was actually felt");
        assert_eq!(
            check_stream_invariants(&source, &sp, &out, 60.0),
            None,
            "oracles hold after the ordered-emission fix"
        );
    }

    #[test]
    fn window_ids_cover_tumbling_and_sliding() {
        let t = WindowSpec::tumbling(1.0, 0.0);
        assert_eq!(t.ids_for(0.0), (0, 0));
        assert_eq!(t.ids_for(0.99), (0, 0));
        assert_eq!(t.ids_for(1.0), (1, 1), "starts are inclusive");
        let s = WindowSpec::sliding(2.0, 1.0, 0.0);
        assert_eq!(s.ids_for(0.5), (0, 0));
        assert_eq!(s.ids_for(1.5), (0, 1), "overlap: two windows");
        assert_eq!(s.ids_for(2.0), (1, 2), "end-exclusive at the boundary");
        assert_eq!(s.end_of(3), 5.0);
    }

    #[test]
    fn clean_stream_closes_every_window_once() {
        // 20 frames at 0.25s spacing → event times 0..4.75, tumbling 1s
        // windows 0..4, the last closed by the EOS flush.
        let source = SourceLog::clean(20, 0.25, 0.05);
        let sp = spec(DispatchMode::PerFrame);
        let (out, report) =
            run_with(FaultPlan::none(), &source, &sp, &RetryPolicy::new(3)).expect("clean run");
        assert_eq!(out.windows.len(), 5);
        assert_eq!(out.frames_accepted, 20);
        assert!(out.late.is_empty() && out.rejected.is_empty());
        assert_eq!(out.duplicates_dropped, 0);
        assert!(out.windows.iter().all(|w| w.frames.len() == 4));
        assert!(report.makespan_s > 0.0);
        assert_eq!(
            check_stream_invariants(&source, &sp, &out, 1.0),
            None,
            "oracles hold on the clean run"
        );
    }

    #[test]
    fn all_modes_agree_on_window_contents() {
        let source = SourceLog::clean(24, 0.25, 0.05);
        let sp0 = spec(DispatchMode::PerFrame);
        let (base, _) = run_with(FaultPlan::none(), &source, &sp0, &RetryPolicy::new(3)).unwrap();
        for mode in [
            DispatchMode::MicroBatch(4),
            DispatchMode::UnitPerWindow,
            DispatchMode::RingCollective(3),
        ] {
            let sp = spec(mode);
            let (out, _) = run_with(FaultPlan::none(), &source, &sp, &RetryPolicy::new(3)).unwrap();
            let a: Vec<_> = base.windows.iter().map(|w| (w.id, w.value)).collect();
            let b: Vec<_> = out.windows.iter().map(|w| (w.id, w.value)).collect();
            assert_eq!(a, b, "mode {mode:?} must fold identical windows");
            assert_eq!(
                check_stream_invariants(&source, &sp, &out, 1.0),
                None,
                "oracles hold for {mode:?}"
            );
        }
    }

    #[test]
    fn late_frames_take_the_typed_disposition() {
        // Frame 2 (event 0.5s) arrives after window 0 closed.
        let mut source = SourceLog::clean(8, 0.25, 0.05);
        let late_arrival = 2.5;
        source.events[2].arrive_s = late_arrival;
        source
            .events
            .sort_by(|a, b| a.arrive_s.total_cmp(&b.arrive_s));
        for disp in [
            LateDisposition::SideChannel,
            LateDisposition::Reject,
            LateDisposition::Absorb,
        ] {
            let mut sp = spec(DispatchMode::PerFrame);
            sp.late = disp;
            let (out, _) = run_with(FaultPlan::none(), &source, &sp, &RetryPolicy::new(3)).unwrap();
            assert_eq!(
                check_stream_invariants(&source, &sp, &out, 3.0),
                None,
                "oracles hold under {disp:?}"
            );
            let w0 = out.windows.iter().find(|w| w.id == 0).expect("window 0");
            match disp {
                LateDisposition::SideChannel => {
                    assert!(out.late.iter().any(|r| r.frame == 2 && r.window == 0));
                    assert!(!w0.frames.contains(&2));
                }
                LateDisposition::Reject => {
                    assert!(out.rejected.iter().any(|r| r.frame == 2));
                    assert!(!w0.frames.contains(&2));
                }
                LateDisposition::Absorb => {
                    assert!(out.absorbed.iter().any(|r| r.frame == 2));
                    assert!(w0.frames.contains(&2), "absorbed into the result");
                    assert!(w0.amended);
                }
            }
        }
    }

    #[test]
    fn duplicates_are_deduped() {
        let mut source = SourceLog::clean(6, 0.25, 0.05);
        let mut dup = source.events[3];
        dup.duplicate = true;
        dup.arrive_s += 0.4;
        source.events.push(dup);
        source
            .events
            .sort_by(|a, b| a.arrive_s.total_cmp(&b.arrive_s));
        let sp = spec(DispatchMode::PerFrame);
        let (out, _) = run_with(FaultPlan::none(), &source, &sp, &RetryPolicy::new(3)).unwrap();
        assert_eq!(out.duplicates_dropped, 1);
        assert_eq!(out.frames_accepted, 6);
        assert_eq!(check_stream_invariants(&source, &sp, &out, 1.0), None);
    }

    /// Node 0 (the driver) holds no state memory, so every window lands on
    /// node 1 — the node the partition tests then cut off or kill.
    fn driverless_state() -> FaultPlan {
        FaultPlan::none().shrink_memory(0, 0.0, 0)
    }

    #[test]
    fn false_positive_partition_replays_windows_and_fences_duplicates() {
        // A cut isolates node 1 (where all window state lives) from 1.0s
        // to 4.0s — long enough for the detector (beat 0.25s, timeout
        // 0.5s → suspected at 1.25s) to falsely give up on a node that is
        // still alive. The stranded windows replay on node 2 and the
        // zombie replica's post-heal contribution is fenced.
        let faults = driverless_state().partition(vec![vec![0, 2], vec![1]], 1.0, 4.0);
        let source = SourceLog::clean(20, 0.25, 0.05);
        let sp = spec(DispatchMode::PerFrame);
        let policy = RetryPolicy::new(4)
            .with_detection_delay(0.25)
            .with_suspicion(0.25, 0.5);
        let (out, report) = run_with_nodes(faults, 3, &source, &sp, &policy).expect("recovers");
        assert!(out.frames_replayed > 0, "stranded windows were replayed");
        assert!(
            report.fenced_results > 0,
            "zombie contributions were fenced"
        );
        assert!(out.windows.iter().any(|w| w.replayed));
        // No double count: if a fenced replica's frames were also folded,
        // the window values would differ from the fault-free run.
        let (clean, _) =
            run_with_nodes(driverless_state(), 3, &source, &sp, &RetryPolicy::new(3)).unwrap();
        let a: Vec<_> = out.windows.iter().map(|w| (w.id, w.value)).collect();
        let b: Vec<_> = clean.windows.iter().map(|w| (w.id, w.value)).collect();
        assert_eq!(a, b, "fenced replay never double-counts a frame");
        assert_eq!(check_stream_invariants(&source, &sp, &out, 8.0), None);
    }

    #[test]
    fn waited_out_cut_replays_nothing_and_fences_nothing() {
        // The cut heals at 1.2s, before the detector's suspicion time of
        // 1.25s: a patient detector never gives up on the node, so there
        // is no zombie, no replay, and no fence.
        let faults = driverless_state().partition(vec![vec![0, 2], vec![1]], 1.0, 1.2);
        let source = SourceLog::clean(20, 0.25, 0.05);
        let sp = spec(DispatchMode::PerFrame);
        let policy = RetryPolicy::new(4)
            .with_detection_delay(0.25)
            .with_suspicion(0.25, 0.5);
        let (out, report) = run_with_nodes(faults, 3, &source, &sp, &policy).expect("rides it out");
        assert_eq!(out.frames_replayed, 0, "nothing was given up on");
        assert_eq!(report.fenced_results, 0, "no zombie, nothing to fence");
        let (clean, _) =
            run_with_nodes(driverless_state(), 3, &source, &sp, &RetryPolicy::new(3)).unwrap();
        let a: Vec<_> = out.windows.iter().map(|w| (w.id, w.value)).collect();
        let b: Vec<_> = clean.windows.iter().map(|w| (w.id, w.value)).collect();
        assert_eq!(a, b);
        assert_eq!(check_stream_invariants(&source, &sp, &out, 8.0), None);
    }

    #[test]
    fn suspicion_timeout_equal_to_heartbeat_suspects_at_the_cut() {
        // Boundary audit: timeout == heartbeat means a cut landing exactly
        // on a beat (1.0s is a multiple of 0.25s) is suspected the instant
        // it happens — suspect_time clamps to the cut, never before it.
        // Instant suspicion must still replay and fence exactly once.
        let faults = driverless_state().partition(vec![vec![0, 2], vec![1]], 1.0, 3.0);
        let source = SourceLog::clean(20, 0.25, 0.05);
        let sp = spec(DispatchMode::PerFrame);
        let policy = RetryPolicy::new(4)
            .with_detection_delay(0.25)
            .with_suspicion(0.25, 0.25);
        let (out, report) = run_with_nodes(faults, 3, &source, &sp, &policy).expect("recovers");
        assert!(report.fenced_results > 0);
        assert!(out.frames_replayed > 0);
        let (clean, _) =
            run_with_nodes(driverless_state(), 3, &source, &sp, &RetryPolicy::new(3)).unwrap();
        let a: Vec<_> = out.windows.iter().map(|w| (w.id, w.value)).collect();
        let b: Vec<_> = clean.windows.iter().map(|w| (w.id, w.value)).collect();
        assert_eq!(a, b, "instant suspicion still folds every frame once");
        assert_eq!(check_stream_invariants(&source, &sp, &out, 8.0), None);
    }

    #[test]
    fn death_at_exact_dispatch_with_zero_detection_replays_once() {
        // Satellite audit: with_detection_delay(0.0) makes a death visible
        // the same instant a frame arrives (frame 4 arrives at exactly
        // 1.05s, when node 1 dies). The replay must not race the dispatch:
        // the dead node's windows re-home before the frame is accepted,
        // and nothing is double-counted or hung.
        let faults = driverless_state().kill_node(1, 1.05);
        let source = SourceLog::clean(20, 0.25, 0.05);
        let sp = spec(DispatchMode::PerFrame);
        let policy = RetryPolicy::new(4).with_detection_delay(0.0);
        let (out, _) = run_with_nodes(faults, 3, &source, &sp, &policy).expect("recovers");
        assert!(out.frames_replayed > 0, "the death was felt");
        assert_eq!(out.windows.len(), 5, "every window still closes once");
        let (clean, _) =
            run_with_nodes(driverless_state(), 3, &source, &sp, &RetryPolicy::new(3)).unwrap();
        let a: Vec<_> = out.windows.iter().map(|w| (w.id, w.value)).collect();
        let b: Vec<_> = clean.windows.iter().map(|w| (w.id, w.value)).collect();
        assert_eq!(a, b, "zero-delay detection folds every frame once");
        assert_eq!(check_stream_invariants(&source, &sp, &out, 8.0), None);
    }

    #[test]
    fn producer_crash_stall_time_is_finite_with_zero_detection_delay() {
        // Satellite audit: the no-deadline stall fallback pads the stall
        // stamp by detection_delay_s.max(1.0); with a zero detection delay
        // the typed stall must still land strictly after the last
        // delivery, not at it (a zero pad would collide with legitimate
        // completion times).
        let mut source = SourceLog::clean(16, 0.25, 0.05);
        source.crashed_at = Some(1.0);
        source.undelivered = (8..16).collect();
        source.events.truncate(8);
        let sp = spec(DispatchMode::PerFrame);
        let policy = RetryPolicy::new(3).with_detection_delay(0.0);
        match run_with(FaultPlan::none(), &source, &sp, &policy) {
            Err(StreamError::Stalled { at_s, .. }) => {
                let last_arrival = 7.0 * 0.25 + 0.05;
                assert!(at_s.is_finite());
                assert!(
                    at_s > last_arrival,
                    "stall stamped strictly after the last delivery ({at_s} vs {last_arrival})"
                );
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn backpressure_waits_for_a_scheduled_budget_change() {
        // Shrink node memory to one frame of state at t=0, grow it back at
        // t=2: the second frame must wait, traced as backpressure.
        let bytes = 1 << 20;
        let faults = FaultPlan::none()
            .set_memory(0, 0.0, bytes)
            .set_memory(1, 0.0, bytes)
            .set_memory(0, 2.0, 64 * bytes)
            .set_memory(1, 2.0, 64 * bytes);
        let source = SourceLog::clean(8, 0.25, 0.05);
        let sp = spec(DispatchMode::PerFrame);
        let (out, report) = run_with(faults, &source, &sp, &RetryPolicy::new(3)).unwrap();
        assert!(out.backpressure_pauses > 0, "ingestion must pause");
        assert!(out.backpressure_wait_s > 0.0);
        let trace = report.trace.expect("traced");
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, crate::trace::EventKind::Backpressure { .. })));
        assert_eq!(check_stream_invariants(&source, &sp, &out, 4.0), None);
    }

    #[test]
    fn exhausted_budget_fails_typed_not_oom() {
        let bytes = 1 << 20;
        let faults = FaultPlan::none()
            .set_memory(0, 0.0, bytes)
            .set_memory(1, 0.0, bytes);
        let source = SourceLog::clean(8, 0.25, 0.05);
        let sp = spec(DispatchMode::PerFrame);
        match run_with(faults.clone(), &source, &sp, &RetryPolicy::new(3)) {
            Err(StreamError::Memory { required, .. }) => assert_eq!(required, bytes),
            other => panic!("expected Memory, got {other:?}"),
        }
        // With a deadline the same situation is a typed stall.
        let policy = RetryPolicy::new(3).with_deadline(30.0);
        match run_with(faults, &source, &sp, &policy) {
            Err(StreamError::Stalled { at_s, .. }) => assert_eq!(at_s, 30.0),
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn producer_crash_stalls_typed_under_a_deadline() {
        // Only half the frames ever arrive; the rest died with the producer.
        let mut source = SourceLog::clean(16, 0.25, 0.05);
        source.crashed_at = Some(1.0);
        source.undelivered = (8..16).collect();
        source.events.truncate(8);
        let sp = spec(DispatchMode::PerFrame);
        let policy = RetryPolicy::new(3).with_deadline(60.0);
        match run_with(FaultPlan::none(), &source, &sp, &policy) {
            Err(StreamError::Stalled { at_s, open_windows }) => {
                assert_eq!(at_s, 60.0);
                assert!(open_windows > 0);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        // Without a deadline the stall is still typed (never a hang).
        match run_with(FaultPlan::none(), &source, &sp, &RetryPolicy::new(3)) {
            Err(StreamError::Stalled { .. }) => {}
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn node_death_replays_only_the_lost_windows() {
        // Node 0 dies mid-stream; whatever windows lived there replay on
        // node 1 and the output still satisfies no-silent-loss.
        let faults = FaultPlan::none().kill_node(0, 1.6);
        let source = SourceLog::clean(20, 0.25, 0.05);
        let sp = spec(DispatchMode::PerFrame);
        let policy = RetryPolicy::new(4).with_detection_delay(0.25);
        let (out, report) = run_with(faults, &source, &sp, &policy).expect("recovers");
        let (clean, _) = run_with(FaultPlan::none(), &source, &sp, &RetryPolicy::new(3)).unwrap();
        let a: Vec<_> = out.windows.iter().map(|w| (w.id, w.value)).collect();
        let b: Vec<_> = clean.windows.iter().map(|w| (w.id, w.value)).collect();
        assert_eq!(a, b, "recovered output matches the fault-free run");
        if out.frames_replayed > 0 {
            assert!(out.windows.iter().any(|w| w.replayed));
            assert!(report.recomputed_partitions > 0);
            assert!(
                out.frames_replayed < out.frames_accepted,
                "per-window lineage replays a strict subset, not the job"
            );
        }
        assert_eq!(check_stream_invariants(&source, &sp, &out, 4.0), None);
    }

    #[test]
    fn runner_is_deterministic() {
        let faults = FaultPlan::none().kill_node(0, 1.6).seeded(7);
        let source = SourceLog::clean(20, 0.25, 0.05);
        let sp = spec(DispatchMode::MicroBatch(4));
        let policy = RetryPolicy::new(4).with_detection_delay(0.25);
        let (o1, r1) = run_with(faults.clone(), &source, &sp, &policy).unwrap();
        let (o2, r2) = run_with(faults, &source, &sp, &policy).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(r1, r2, "reports are bit-identical");
    }

    #[test]
    fn oracle_catches_a_dropped_frame() {
        let source = SourceLog::clean(8, 0.25, 0.05);
        let sp = spec(DispatchMode::PerFrame);
        let (mut out, _) = run_with(FaultPlan::none(), &source, &sp, &RetryPolicy::new(3)).unwrap();
        // Silently delete a frame from its window result.
        let w = &mut out.windows[0];
        w.frames.retain(|&f| f != 1);
        let v = check_stream_invariants(&source, &sp, &out, 1.0);
        assert!(
            v.as_deref().is_some_and(|m| m.contains("silent loss")),
            "tampering must trip the oracle, got {v:?}"
        );
    }
}
