//! Critical-path extraction from a recorded trace.
//!
//! The makespan of a simulated run is set by one chain of events: the
//! last-finishing event, whatever enabled *it* to start, and so on back to
//! time zero. [`CriticalPath::from_trace`] recovers that chain by a
//! backward walk — at each step the predecessor is the latest-ending event
//! that finishes no later than the current event starts (same-core
//! continuation preferred on ties, matching how a busy core hands straight
//! over to its next task) — and labels any remaining gap as `wait`.
//!
//! This turns Fig. 8-style claims into mechanism: on a Dask-profile
//! leaflet run the broadcast event sits on the path and its share of
//! edge-discovery time is 40–65%, while Spark's tree broadcast contributes
//! a few percent (see `tests/observability.rs`).

use crate::trace::Trace;

/// One link in the makespan chain.
#[derive(Clone, Debug, PartialEq)]
pub struct CpSegment {
    /// Event label ([`Trace::label_of`]), or `"wait"` for an idle
    /// gap between an event and its predecessor.
    pub label: String,
    /// Owning phase of the event (empty for `wait` gaps).
    pub phase: String,
    pub start_s: f64,
    pub end_s: f64,
}

impl CpSegment {
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// The chain of events that sets the makespan, earliest first.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPath {
    pub segments: Vec<CpSegment>,
}

impl CriticalPath {
    /// Walk the event graph backwards from the last-finishing event.
    pub fn from_trace(trace: &Trace) -> CriticalPath {
        let events = &trace.events;
        if events.is_empty() {
            return CriticalPath::default();
        }
        let eps = trace.span() * 1e-9 + 1e-12;
        let mut visited = vec![false; events.len()];
        // Start from the event that ends last (ties: the later starter,
        // i.e. the shorter tail — it is the one that was actually waited
        // on last).
        let mut cur = (0..events.len())
            .max_by(|&a, &b| {
                events[a]
                    .end_s
                    .total_cmp(&events[b].end_s)
                    .then(events[a].start_s.total_cmp(&events[b].start_s))
            })
            .expect("non-empty");
        let mut chain: Vec<CpSegment> = Vec::new();
        loop {
            visited[cur] = true;
            let e = &events[cur];
            chain.push(CpSegment {
                label: trace.label_of(e).to_string(),
                phase: trace.phase_of(e).to_string(),
                start_s: e.start_s,
                end_s: e.end_s,
            });
            // Predecessor: the latest-ending unvisited event finishing by
            // the time `e` starts; prefer a same-core handover on ties.
            let mut pred: Option<usize> = None;
            for (i, c) in events.iter().enumerate() {
                if visited[i] || c.end_s > e.start_s + eps {
                    continue;
                }
                let better = match pred {
                    None => true,
                    Some(p) => {
                        let d = c.end_s - events[p].end_s;
                        d > eps || (d.abs() <= eps && c.core == e.core && events[p].core != e.core)
                    }
                };
                if better {
                    pred = Some(i);
                }
            }
            let Some(p) = pred else { break };
            let gap = e.start_s - events[p].end_s;
            if gap > eps {
                chain.push(CpSegment {
                    label: "wait".into(),
                    phase: String::new(),
                    start_s: events[p].end_s,
                    end_s: e.start_s,
                });
            }
            cur = p;
        }
        chain.reverse();
        CriticalPath { segments: chain }
    }

    /// Sum of segment durations (≤ the trace span; the head segment may
    /// start after 0 if nothing preceded it).
    pub fn total_s(&self) -> f64 {
        self.segments.iter().map(CpSegment::duration).sum()
    }

    /// Total path time spent in segments with this label.
    pub fn time_for(&self, label: &str) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.label == label)
            .map(CpSegment::duration)
            .sum()
    }

    /// Path time aggregated by label, largest share first.
    pub fn shares(&self) -> Vec<(String, f64)> {
        let total = self.total_s();
        let mut agg: Vec<(String, f64)> = Vec::new();
        for s in &self.segments {
            match agg.iter_mut().find(|(l, _)| *l == s.label) {
                Some((_, t)) => *t += s.duration(),
                None => agg.push((s.label.clone(), s.duration())),
            }
        }
        if total > 0.0 {
            for (_, t) in &mut agg {
                *t /= total;
            }
        }
        agg.sort_by(|a, b| b.1.total_cmp(&a.1));
        agg
    }

    /// Human-readable report: the chain plus the per-label breakdown.
    pub fn render(&self) -> String {
        let mut out = String::from("critical path (makespan chain):\n");
        for s in &self.segments {
            out.push_str(&format!(
                "  [{:>10.4}s – {:>10.4}s] {:<18} {}\n",
                s.start_s,
                s.end_s,
                s.label,
                if s.phase.is_empty() {
                    "-"
                } else {
                    s.phase.as_str()
                }
            ));
        }
        out.push_str("share of path time by label:\n");
        for (label, share) in self.shares() {
            out.push_str(&format!("  {:<18} {:>5.1}%\n", label, 100.0 * share));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventKind, TraceEvent};

    fn task(t: &mut Trace, core: usize, start: f64, end: f64, label: &str) {
        let label = t.intern(label);
        t.record(TraceEvent {
            task: 0,
            core,
            start_s: start,
            end_s: end,
            killed: false,
            ready_s: start,
            phase: 0,
            kind: EventKind::Task {
                label,
                speculative: false,
            },
        });
    }

    #[test]
    fn chain_follows_dependencies_not_wall_time() {
        let mut t = Trace::default();
        // Broadcast [0,1] feeds two tasks; the long one on core 0 sets the
        // makespan. A short unrelated task on core 1 must stay off the
        // path.
        let phase = t.intern("broadcast");
        t.record(TraceEvent {
            task: 0,
            core: 0,
            start_s: 0.0,
            end_s: 1.0,
            killed: false,
            ready_s: 0.0,
            phase,
            kind: EventKind::Broadcast {
                bytes: 10,
                dest_nodes: 1,
            },
        });
        task(&mut t, 0, 1.0, 4.0, "strip");
        task(&mut t, 1, 1.0, 1.5, "strip");
        let cp = CriticalPath::from_trace(&t);
        let labels: Vec<&str> = cp.segments.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["broadcast", "strip"]);
        assert_eq!(cp.time_for("broadcast"), 1.0);
        assert_eq!(cp.time_for("strip"), 3.0);
        assert_eq!(cp.total_s(), 4.0);
        assert_eq!(cp.shares()[0].0, "strip");
    }

    #[test]
    fn gaps_become_wait_segments() {
        let mut t = Trace::default();
        task(&mut t, 0, 0.0, 1.0, "a");
        task(&mut t, 0, 2.0, 3.0, "b"); // released late: 1s idle gap
        let cp = CriticalPath::from_trace(&t);
        let labels: Vec<&str> = cp.segments.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["a", "wait", "b"]);
        assert_eq!(cp.time_for("wait"), 1.0);
    }

    #[test]
    fn same_core_handover_preferred_on_ties() {
        let mut t = Trace::default();
        task(&mut t, 0, 0.0, 1.0, "other");
        task(&mut t, 1, 0.0, 1.0, "mine");
        task(&mut t, 1, 1.0, 2.0, "tail");
        let cp = CriticalPath::from_trace(&t);
        assert_eq!(cp.segments[0].label, "mine");
    }

    #[test]
    fn zero_duration_chains_terminate() {
        let mut t = Trace::default();
        for i in 0..5 {
            task(&mut t, 0, 1.0, 1.0, &format!("z{i}"));
        }
        task(&mut t, 0, 0.0, 1.0, "base");
        let cp = CriticalPath::from_trace(&t);
        assert!(cp.segments.len() <= 6);
        assert_eq!(cp.segments[0].label, "base");
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let cp = CriticalPath::from_trace(&Trace::default());
        assert!(cp.segments.is_empty());
        assert_eq!(cp.total_s(), 0.0);
        assert!(cp.render().contains("critical path"));
    }
}
