//! Simulated core timelines with list scheduling.

use crate::cluster::Cluster;
use crate::policy::{PolicyError, RetryPolicy};
use crate::report::SimReport;
use crate::trace::{EventKind, Sym, Trace, TraceEvent};

/// Where and when a simulated task ran.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskPlacement {
    pub core: usize,
    pub start: f64,
    pub end: f64,
}

/// Outcome of placing one task *attempt* against the cluster's fault plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TaskAttempt {
    /// The attempt ran to completion.
    Done(TaskPlacement),
    /// The attempt's node died mid-task: the work from `start` to
    /// `died_at` is lost and the caller must decide how to recover
    /// (retry, recompute from lineage, re-enqueue, or abort).
    Killed {
        core: usize,
        start: f64,
        died_at: f64,
    },
    /// The attempt's node was partitioned from the driver mid-attempt and
    /// the suspicion detector false-positived: the node is *alive* and the
    /// attempt ran to completion at `end`, but the scheduler declared it
    /// dead at `suspected_at` and must reschedule. The orphaned result
    /// arrives at `deliver_at` (after heal) carrying a stale attempt
    /// epoch; the caller MUST fence it ([`SimExecutor::record_fenced`]) so
    /// it is rejected exactly-once and never double-counted.
    Zombie {
        core: usize,
        start: f64,
        /// When the zombie finished computing (its core was genuinely busy
        /// until then — wasted work, accounted as `zombie_time_s`).
        end: f64,
        /// When the detector declared the node suspect; recovery starts
        /// here, not at any real death.
        suspected_at: f64,
        /// When the stale result crosses the healed network and is fenced.
        deliver_at: f64,
    },
}

/// Per-attempt placement options.
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskOpts {
    /// Never place on this core (a speculative backup avoids the core the
    /// original attempt runs on).
    pub avoid_core: Option<usize>,
    /// Speculative-execution bound: an attempt observed still running at
    /// `start + cap` gets a backup copy launched on another core (chosen
    /// by the scheduler, avoiding the straggler's core). The backup
    /// *occupies* that core; the earlier finisher wins and the loser is
    /// killed (and shows in the trace as a killed attempt). If no other
    /// core is free — or the backup would not finish earlier — no backup
    /// is launched and the straggler runs to completion.
    pub speculation_cap: Option<f64>,
}

/// Tournament tree over per-core free times: the earliest-free-core index
/// that replaces the linear scan on the placement hot path.
///
/// A complete binary tree over `leaves` (next power of two ≥ core count)
/// slots. Each leaf holds its core's *key* — the core's free time while the
/// core is admitted, `+∞` while admission control has it closed (and for
/// padding slots) — and its *cap*, the node's scripted death time (`+∞`
/// when the node never dies, `-∞` for padding). Internal nodes hold
/// `min(key)` and `max(cap)` of their subtrees.
///
/// [`Self::pick`] descends left-first with branch-and-bound pruning:
/// * a subtree whose `min_key` is `+∞` holds no admitted core;
/// * a subtree whose `max_cap ≤ ready` is entirely dead by the release;
/// * a subtree whose optimistic bound `max(min_key, ready)` is not
///   *strictly* earlier than the incumbent cannot win (left-first descent
///   therefore reproduces the linear scan's lowest-id tie-break exactly).
///
/// A leaf survives only if it can start before its cap
/// (`max(free, ready) < died_at`) — the same "node gone before the task
/// could begin" rule the linear scan applies. Typical picks touch
/// O(log cores) tree nodes.
#[derive(Clone, Debug)]
struct CoreIndex {
    leaves: usize,
    min_key: Vec<f64>,
    max_cap: Vec<f64>,
}

impl CoreIndex {
    fn new(core_free: &[f64], caps: impl Fn(usize) -> f64) -> CoreIndex {
        let leaves = core_free.len().next_power_of_two().max(1);
        let mut idx = CoreIndex {
            leaves,
            min_key: vec![f64::INFINITY; 2 * leaves],
            max_cap: vec![f64::NEG_INFINITY; 2 * leaves],
        };
        for (c, &free) in core_free.iter().enumerate() {
            idx.min_key[leaves + c] = free;
            idx.max_cap[leaves + c] = caps(c);
        }
        for n in (1..leaves).rev() {
            idx.min_key[n] = idx.min_key[2 * n].min(idx.min_key[2 * n + 1]);
            idx.max_cap[n] = idx.max_cap[2 * n].max(idx.max_cap[2 * n + 1]);
        }
        idx
    }

    /// Update core `c`'s key (`+∞` closes the core to placement) and
    /// re-aggregate its ancestors.
    fn set_key(&mut self, c: usize, key: f64) {
        let mut n = self.leaves + c;
        self.min_key[n] = key;
        while n > 1 {
            n /= 2;
            let m = self.min_key[2 * n].min(self.min_key[2 * n + 1]);
            if self.min_key[n] == m {
                break;
            }
            self.min_key[n] = m;
        }
    }

    fn pick(&self, ready: f64, avoid: Option<usize>) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        self.descend(1, ready, avoid, &mut best);
        best
    }

    fn descend(&self, n: usize, ready: f64, avoid: Option<usize>, best: &mut Option<(usize, f64)>) {
        let key = self.min_key[n];
        if key == f64::INFINITY || self.max_cap[n] <= ready {
            return; // no admitted core below, or all dead by the release
        }
        let bound = if key > ready { key } else { ready };
        if let Some((_, incumbent)) = *best {
            if bound >= incumbent {
                return; // cannot start strictly earlier than the incumbent
            }
        }
        if n >= self.leaves {
            let c = n - self.leaves;
            if Some(c) != avoid && bound < self.max_cap[n] {
                *best = Some((c, bound));
            }
            return;
        }
        self.descend(2 * n, ready, avoid, best);
        self.descend(2 * n + 1, ready, avoid, best);
    }
}

/// Greedy list scheduler over the cluster's simulated cores.
///
/// Each core tracks the virtual time at which it becomes free. A task with
/// release time `ready` and duration `dur` is placed on the core giving the
/// earliest start (`max(ready, core_free)`), ties broken by lowest core id
/// — the behaviour of a work-conserving task scheduler with an idle worker
/// pool, which is what Spark executors, Dask workers and pilot agents all
/// approximate.
///
/// The cluster's [`FaultPlan`](crate::FaultPlan) is consulted at placement
/// time: cores on a node that has already died are never chosen, straggler
/// cores stretch task durations, and an attempt whose interval crosses its
/// node's death time comes back as [`TaskAttempt::Killed`].
///
/// When tracing is enabled ([`Self::enable_trace`]) every placement is
/// recorded as a typed [`TraceEvent`] stamped with the current phase
/// ([`Self::set_phase`]) and task label ([`Self::set_task_label`]); engines
/// additionally record network-side events via [`Self::record_fetch`],
/// [`Self::record_broadcast`] and [`Self::record_recovery`]. The trace
/// lives inside the [`SimReport`] so it survives `report()` clones. Phase
/// and label strings are interned once per [`Self::set_phase`] /
/// [`Self::set_task_label`] call, so recording an event allocates nothing.
#[derive(Clone, Debug)]
pub struct SimExecutor {
    cluster: Cluster,
    core_free: Vec<f64>,
    /// Earliest-free-core tournament tree kept in lockstep with
    /// `core_free` (and admission limits) by [`Self::set_core_free`] /
    /// [`Self::set_node_core_limit`].
    index: CoreIndex,
    /// Incrementally maintained `max(core_free)`: every write to a core's
    /// free time is monotone non-decreasing, so the running max equals the
    /// fold the old O(cores) [`Self::all_idle_at`] computed.
    max_free: f64,
    /// Differential-testing escape hatch: route picks through the retired
    /// linear scan instead of the index (see [`Self::set_linear_pick`]).
    use_linear_pick: bool,
    report: SimReport,
    phase: String,
    task_label: String,
    /// Interned ids of `phase` / `task_label` in the report's trace;
    /// meaningful only while tracing is enabled.
    phase_sym: Sym,
    label_sym: Sym,
    /// Count of task-event record opportunities, for trace sampling.
    trace_seq: u64,
    /// Record every n-th task event (1 = all; network/memory events are
    /// never sampled so byte-conservation oracles stay exact).
    trace_stride: u32,
    /// Resident bytes per node (cached partitions, broadcast replicas,
    /// shuffle buffers, in-flight working sets — whatever the engine
    /// reserves). The high-water mark lives in `report.mem_high_water`.
    mem_resident: Vec<u64>,
    /// Usable cores per node (admission control): core `c` is schedulable
    /// only while `c % cores_per_node < node_core_limit[node]`. Pilot-style
    /// engines shrink this when declared working sets exceed the budget.
    node_core_limit: Vec<usize>,
    /// Host-parallelism degree captured from
    /// [`parallel::current_degree`](crate::parallel::current_degree) when
    /// this executor was created: how many host threads the owning engine
    /// may use to run real task closures. Purely a host-side knob — it
    /// never affects virtual-time placement.
    host_threads: usize,
}

impl SimExecutor {
    pub fn new(cluster: Cluster) -> Self {
        let cores = cluster.total_cores();
        let nodes = cluster.nodes;
        let per_node = cluster.profile.cores_per_node;
        let report = SimReport {
            mem_high_water: vec![0; nodes],
            ..SimReport::default()
        };
        let core_free = vec![0.0; cores];
        let index = CoreIndex::new(&core_free, |c| {
            cluster
                .faults()
                .node_death(cluster.node_of_core(c))
                .unwrap_or(f64::INFINITY)
        });
        SimExecutor {
            cluster,
            core_free,
            index,
            max_free: 0.0,
            use_linear_pick: false,
            report,
            phase: String::new(),
            task_label: "task".into(),
            phase_sym: 0,
            label_sym: 0,
            trace_seq: 0,
            trace_stride: 1,
            mem_resident: vec![0; nodes],
            node_core_limit: vec![per_node; nodes],
            host_threads: crate::parallel::current_degree(),
        }
    }

    /// How many host threads the owning engine may use for real closure
    /// execution (≥ 1; 1 = serial, the historical behavior).
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// Start recording a schedule trace (typed per-event records).
    pub fn enable_trace(&mut self) {
        self.enable_trace_sampled(1);
    }

    /// Start recording a schedule trace keeping only every `stride`-th
    /// task attempt (clamped to ≥ 1; 1 = record everything, the
    /// [`Self::enable_trace`] behaviour). Network and memory events are
    /// always recorded — byte-conservation oracles need all of them — so
    /// sampling bounds trace memory on task-dominated runs without
    /// breaking accounting. The stride is stamped onto the trace
    /// ([`Trace::sample_stride`]) so consumers know counts are partial.
    pub fn enable_trace_sampled(&mut self, stride: u32) {
        let stride = stride.max(1);
        if self.report.trace.is_none() {
            self.report.trace = Some(Trace::default());
        }
        let trace = self.report.trace.as_mut().expect("just created");
        trace.set_sample_stride(stride);
        self.trace_stride = stride;
        self.phase_sym = trace.intern(&self.phase);
        self.label_sym = trace.intern(&self.task_label);
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.report.trace.as_ref()
    }

    /// Set the phase name stamped onto subsequently recorded events.
    pub fn set_phase(&mut self, phase: &str) {
        if phase != self.phase {
            self.phase.clear();
            self.phase.push_str(phase);
            if let Some(trace) = &mut self.report.trace {
                self.phase_sym = trace.intern(phase);
            }
        }
    }

    /// Set the label stamped onto subsequently placed task attempts.
    pub fn set_task_label(&mut self, label: &str) {
        if label != self.task_label {
            self.task_label.clear();
            self.task_label.push_str(label);
            if let Some(trace) = &mut self.report.trace {
                self.label_sym = trace.intern(label);
            }
        }
    }

    /// The label currently stamped onto placed task attempts.
    pub fn task_label(&self) -> &str {
        &self.task_label
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Death time of the node hosting `core`, if the fault plan kills it.
    fn death_of(&self, core: usize) -> Option<f64> {
        self.cluster
            .faults()
            .node_death(self.cluster.node_of_core(core))
    }

    /// Whether admission control lets core `c` accept new work: its index
    /// within the node must fall below the node's usable-core limit.
    fn core_admitted(&self, c: usize) -> bool {
        let per_node = self.cluster.profile.cores_per_node;
        self.node_core_limit
            .get(c / per_node)
            .is_none_or(|&limit| c % per_node < limit)
    }

    /// Advance core `c`'s free time. Every placement/kill writes through
    /// here so the earliest-free-core index and the `max_free` cache stay
    /// in lockstep with `core_free`. Writes are monotone non-decreasing
    /// (a core is never un-busied), which is what makes the running max
    /// valid.
    fn set_core_free(&mut self, c: usize, t: f64) {
        debug_assert!(t >= self.core_free[c], "core free time moved backwards");
        self.core_free[c] = t;
        if self.core_admitted(c) {
            self.index.set_key(c, t);
        }
        if t > self.max_free {
            self.max_free = t;
        }
    }

    /// Greedy core choice: earliest start, ties to the lowest id, skipping
    /// cores whose node is dead by the time the task could start and cores
    /// closed off by admission control. `None` when no eligible core
    /// survives.
    fn try_pick_core(&self, ready: f64, avoid: Option<usize>) -> Option<(usize, f64)> {
        if self.use_linear_pick {
            return self.try_pick_core_linear(ready, avoid);
        }
        self.index.pick(ready, avoid)
    }

    /// The retired O(cores) scan, kept verbatim as the differential-testing
    /// oracle for the tournament-tree index (see the `index_matches_*`
    /// tests) and as the baseline leg of the `sim_throughput` bench. Not
    /// for production use — enable via [`Self::set_linear_pick`].
    #[doc(hidden)]
    pub fn try_pick_core_linear(&self, ready: f64, avoid: Option<usize>) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (c, &free) in self.core_free.iter().enumerate() {
            if Some(c) == avoid || !self.core_admitted(c) {
                continue;
            }
            let start = free.max(ready);
            if let Some(died_at) = self.death_of(c) {
                if start >= died_at {
                    continue; // node gone before the task could begin
                }
            }
            if best.is_none_or(|(_, s)| start < s) {
                best = Some((c, start));
                if start <= ready {
                    break; // cannot start earlier than the release time
                }
            }
        }
        best
    }

    /// Route core picks through the retired linear scan instead of the
    /// index. Benchmarking/differential-testing knob only: both paths pick
    /// identical `(core, start)` pairs, the linear one in O(cores).
    #[doc(hidden)]
    pub fn set_linear_pick(&mut self, on: bool) {
        self.use_linear_pick = on;
    }

    fn pick_core(&self, ready: f64, avoid: Option<usize>) -> (usize, f64) {
        self.try_pick_core(ready, avoid)
            .expect("no surviving core can run the task (all nodes dead)")
    }

    /// Partition-aware core choice: the driver (node 0) cannot dispatch
    /// across an active cut, so a core's earliest start is pushed to
    /// [`FaultPlan::earliest_reach`](crate::FaultPlan::earliest_reach) of
    /// its node. Linear — the tournament tree cannot fold per-node
    /// reachability into its keys — and only used when the plan scripts
    /// partitions, so partition-free runs keep the O(log cores) path
    /// bit-identical.
    fn try_pick_core_reachable(&self, ready: f64, avoid: Option<usize>) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (c, &free) in self.core_free.iter().enumerate() {
            if Some(c) == avoid || !self.core_admitted(c) {
                continue;
            }
            let node = self.cluster.node_of_core(c);
            let start = self
                .cluster
                .faults()
                .earliest_reach(0, node, free.max(ready));
            if let Some(died_at) = self.death_of(c) {
                if start >= died_at {
                    continue; // node gone before the task could begin
                }
            }
            if best.is_none_or(|(_, s)| start < s) {
                best = Some((c, start));
            }
        }
        best
    }

    /// Whether an attempt on `core` spanning `[start, end)` becomes a
    /// zombie: a partition cuts its node off from the driver mid-attempt
    /// and the policy's suspicion detector fires before the cut heals, so
    /// the scheduler falsely declares the (alive, still-computing) node
    /// dead. Returns `(suspected_at, deliver_at)` — when recovery starts
    /// and when the orphaned result arrives to be fenced. `None` when no
    /// partition crosses the attempt, no detector is configured, or the
    /// cut heals before the detector times out (a near-miss, not a false
    /// positive: the result is merely delivered late).
    fn zombie_outcome(
        &self,
        core: usize,
        start: f64,
        end: f64,
        policy: &RetryPolicy,
    ) -> Option<(f64, f64)> {
        let faults = self.cluster.faults();
        if !faults.has_partitions() {
            return None;
        }
        let node = self.cluster.node_of_core(core);
        if node == 0 {
            return None; // driver-local: never cut off from itself
        }
        let (cut, heal) = faults.next_cut_after(0, node, start)?;
        if cut >= end {
            return None; // finished (and reported) before contact was lost
        }
        let det = policy.detector()?;
        let suspect = det.suspect_time(cut);
        if suspect >= heal {
            return None; // heard from again before the timeout expired
        }
        Some((suspect, faults.earliest_reach(0, node, end)))
    }

    /// Schedule a task on the best core, retrying transparently until an
    /// attempt survives. `dur` is in simulated seconds (already scaled by
    /// the machine profile). Engines with their own recovery semantics use
    /// [`Self::run_task_attempt`] instead; this wrapper counts each rerun
    /// as a retry.
    pub fn run_task(&mut self, ready: f64, dur: f64) -> TaskPlacement {
        let mut release = ready;
        loop {
            match self.run_task_attempt(release, dur) {
                TaskAttempt::Done(p) => return p,
                TaskAttempt::Killed { died_at, .. } => {
                    self.report.retries += 1;
                    release = release.max(died_at);
                }
                // Only the detected path produces zombies; the plain
                // attempt API has no failure detector to false-positive.
                TaskAttempt::Zombie { .. } => unreachable!("zombies need a detector"),
            }
        }
    }

    /// Schedule a task under a [`RetryPolicy`]: bounded retries with
    /// exponential backoff in simulated time, heartbeat-delayed death
    /// detection, a per-attempt watchdog timeout, and an optional absolute
    /// deadline. Unlike [`Self::run_task`], this never panics and never
    /// loops forever — exhaustion surfaces as a typed [`PolicyError`].
    ///
    /// Each killed attempt is charged as lost work, traced as a killed
    /// task, and followed by a `"recovery"` phase + [`EventKind::Recovery`]
    /// window covering detection and backoff, so the cost of the policy is
    /// visible to the critical-path and metrics tooling.
    pub fn run_task_policied(
        &mut self,
        ready: f64,
        dur: f64,
        policy: &RetryPolicy,
    ) -> Result<TaskPlacement, PolicyError> {
        assert!(dur >= 0.0 && ready >= 0.0, "negative time");
        // Scripted partitions force the linear reachability-aware pick and
        // arm the zombie path; partition-free plans keep the indexed pick
        // and stay bit-identical to the pre-partition scheduler.
        let has_parts = self.cluster.faults().has_partitions();
        let mut release = ready;
        let mut attempt: u32 = 1;
        // After a kill the offending core is blacklisted for the next
        // attempt (Spark-style executor blacklisting) — without this a
        // watchdog-killed straggler core would win the tie-break again.
        let mut avoid: Option<usize> = None;
        loop {
            let pick = |s: &Self, avoid: Option<usize>| {
                if has_parts {
                    s.try_pick_core_reachable(release, avoid)
                } else {
                    s.try_pick_core(release, avoid)
                }
            };
            // The blacklist is advisory, not fatal: when the blacklisted
            // core is the *only* survivor, scheduling on nothing would
            // deadlock the job, so the scheduler re-admits it — and traces
            // that decision so the concession is visible, rather than
            // silently re-picking the core it just blamed.
            let picked = match pick(self, avoid) {
                some @ Some(_) => some,
                None => match avoid.and_then(|_| pick(self, None)) {
                    Some((core, start)) => {
                        self.record_recovery("blacklist-fallback", release, release.max(start));
                        Some((core, start))
                    }
                    None => None,
                },
            };
            let Some((core, start)) = picked else {
                return Err(PolicyError::NoSurvivingCore { at_s: release });
            };
            let eff = dur * self.cluster.faults().slowdown(core);
            let end = start + eff;
            if let Some(deadline) = policy.deadline_s {
                if end > deadline {
                    return Err(PolicyError::DeadlineExceeded {
                        deadline_s: deadline,
                        at_s: start,
                    });
                }
            }
            let death = self.death_of(core).filter(|&d| end > d);
            let watchdog = policy
                .attempt_timeout_s
                .filter(|&t| eff > t)
                .map(|t| start + t);
            // The attempt dies at the earlier of its node's death and the
            // watchdog firing; `timed_out` records which observer won.
            let (killed_at, timed_out) = match (death, watchdog) {
                (None, None) => {
                    // Survived death and watchdog — but under a scripted
                    // partition the attempt may still be a zombie: alive,
                    // complete, and falsely given up on.
                    if let Some((suspected_at, deliver_at)) =
                        self.zombie_outcome(core, start, end, policy)
                    {
                        self.set_core_free(core, end);
                        self.report.zombie_attempts += 1;
                        self.report.zombie_time_s += end - start;
                        self.record_task_event(core, release, start, end, true, false);
                        if attempt >= policy.max_attempts {
                            return Err(PolicyError::RetriesExhausted {
                                attempts: attempt,
                                last_failure_s: suspected_at,
                            });
                        }
                        attempt += 1;
                        avoid = Some(core);
                        let redispatch = suspected_at + policy.backoff_before(attempt);
                        policy.deadline_gate(suspected_at, redispatch)?;
                        // The stale result is rejected by its attempt epoch
                        // when it finally crosses the healed cut.
                        self.record_fenced("suspect-fence", suspected_at, deliver_at);
                        self.record_recovery("suspicion", suspected_at, redispatch);
                        self.report.push_phase("recovery", suspected_at, redispatch);
                        self.report.retries += 1;
                        release = release.max(redispatch);
                        continue;
                    }
                    if has_parts {
                        let node = self.cluster.node_of_core(core);
                        let deliver = self.cluster.faults().earliest_reach(0, node, end);
                        if deliver > end {
                            // Completed behind a cut that heals before the
                            // detector gives up: the result is simply late.
                            // The core frees at compute end; only the
                            // driver-visible completion moves to the heal.
                            self.set_core_free(core, end);
                            self.record_task_event(core, release, start, end, false, false);
                            self.report.tasks += 1;
                            self.report.compute_s += eff;
                            self.report.makespan_s = self.report.makespan_s.max(deliver);
                            return Ok(TaskPlacement {
                                core,
                                start,
                                end: deliver,
                            });
                        }
                    }
                    return Ok(self.place(core, release, start, eff));
                }
                (Some(d), None) => (d, false),
                (None, Some(t)) => (t, true),
                (Some(d), Some(t)) => (d.min(t), t <= d),
            };
            self.set_core_free(core, killed_at);
            self.report.lost_time_s += killed_at - start;
            self.record_task_event(core, release, start, killed_at, true, false);
            // A watchdog kill is observed immediately (the watchdog *is*
            // the observer); a node death is only noticed one heartbeat
            // later.
            let observed = if timed_out {
                killed_at
            } else {
                killed_at + policy.detection_delay_s
            };
            if attempt >= policy.max_attempts {
                return Err(if timed_out {
                    PolicyError::Timeout {
                        attempt,
                        timeout_s: policy.attempt_timeout_s.unwrap_or(0.0),
                        at_s: killed_at,
                    }
                } else {
                    PolicyError::RetriesExhausted {
                        attempts: attempt,
                        last_failure_s: observed,
                    }
                });
            }
            attempt += 1;
            avoid = Some(core);
            let redispatch = observed + policy.backoff_before(attempt);
            // Gate the backoff against the deadline *before* sleeping: a
            // redispatch already past the deadline fails right at the
            // observation, instead of burning the backoff in virtual time
            // and only noticing at the next placement.
            policy.deadline_gate(observed, redispatch)?;
            self.record_recovery(
                if timed_out { "timeout" } else { "death-detect" },
                killed_at,
                redispatch,
            );
            self.report.push_phase("recovery", killed_at, redispatch);
            self.report.retries += 1;
            release = release.max(redispatch);
        }
    }

    /// Place a single task attempt (no automatic recovery).
    pub fn run_task_attempt(&mut self, ready: f64, dur: f64) -> TaskAttempt {
        self.run_task_attempt_with(ready, dur, TaskOpts::default())
    }

    /// Like [`Self::run_task_attempt_with`], but surfaces "every node is
    /// dead" as a typed error instead of panicking — engine recovery loops
    /// use this so a fault plan can never hang or crash a policied job.
    pub fn run_task_attempt_checked(
        &mut self,
        ready: f64,
        dur: f64,
        opts: TaskOpts,
    ) -> Result<TaskAttempt, PolicyError> {
        if self
            .try_pick_core(ready, opts.avoid_core)
            .or_else(|| self.try_pick_core(ready, None))
            .is_none()
        {
            return Err(PolicyError::NoSurvivingCore { at_s: ready });
        }
        Ok(self.run_task_attempt_with(ready, dur, opts))
    }

    /// Place a single task attempt under a suspicion-based failure
    /// detector — the partition-aware sibling of
    /// [`Self::run_task_attempt_checked`], used by engines whose recovery
    /// loop must handle split-brain. Without scripted partitions this
    /// delegates to the checked path bit-for-bit. With partitions:
    /// dispatch waits out any active cut between the driver and a core's
    /// node, a cut opening mid-attempt plus a detector false-positive
    /// surfaces as [`TaskAttempt::Zombie`] (core busy to compute end, work
    /// accounted as `zombie_time_s`, trace shows a killed attempt), and a
    /// cut the detector waits out merely delays the result: `Done` with
    /// `end` pushed to the heal. Speculation is not modelled on the
    /// partition path (`opts.speculation_cap` is ignored there).
    pub fn run_task_attempt_detected(
        &mut self,
        ready: f64,
        dur: f64,
        opts: TaskOpts,
        policy: &RetryPolicy,
    ) -> Result<TaskAttempt, PolicyError> {
        if !self.cluster.faults().has_partitions() {
            return self.run_task_attempt_checked(ready, dur, opts);
        }
        assert!(dur >= 0.0 && ready >= 0.0, "negative time");
        let picked = self
            .try_pick_core_reachable(ready, opts.avoid_core)
            .or_else(|| self.try_pick_core_reachable(ready, None));
        let Some((core, start)) = picked else {
            return Err(PolicyError::NoSurvivingCore { at_s: ready });
        };
        let eff = dur * self.cluster.faults().slowdown(core);
        let end = start + eff;
        if let Some(died_at) = self.death_of(core).filter(|&d| end > d) {
            self.set_core_free(core, died_at);
            self.report.lost_time_s += died_at - start;
            self.record_task_event(core, ready, start, died_at, true, false);
            return Ok(TaskAttempt::Killed {
                core,
                start,
                died_at,
            });
        }
        if let Some((suspected_at, deliver_at)) = self.zombie_outcome(core, start, end, policy) {
            self.set_core_free(core, end);
            self.report.zombie_attempts += 1;
            self.report.zombie_time_s += end - start;
            self.record_task_event(core, ready, start, end, true, false);
            return Ok(TaskAttempt::Zombie {
                core,
                start,
                end,
                suspected_at,
                deliver_at,
            });
        }
        let node = self.cluster.node_of_core(core);
        let deliver = self.cluster.faults().earliest_reach(0, node, end);
        self.set_core_free(core, end);
        self.record_task_event(core, ready, start, end, false, false);
        self.report.tasks += 1;
        self.report.compute_s += eff;
        self.report.makespan_s = self.report.makespan_s.max(deliver);
        Ok(TaskAttempt::Done(TaskPlacement {
            core,
            start,
            end: deliver,
        }))
    }

    /// Place a single task attempt with placement options.
    pub fn run_task_attempt_with(&mut self, ready: f64, dur: f64, opts: TaskOpts) -> TaskAttempt {
        assert!(dur >= 0.0 && ready >= 0.0, "negative time");
        let (core, start) = self.pick_core(ready, opts.avoid_core);
        let eff = dur * self.cluster.faults().slowdown(core);
        let orig_end = start + eff;
        let death = self.death_of(core).filter(|&d| orig_end > d);

        // Speculative execution: the scheduler notices the attempt still
        // running at `start + cap` and launches a fresh copy of `dur` on
        // another core — which it genuinely occupies. The earlier finisher
        // wins; the loser is killed where it stands. A backup only
        // launches if the original is still alive at detection time and a
        // core exists on which the copy would finish earlier.
        if let Some(cap) = opts.speculation_cap {
            let detect = start + cap;
            let alive_at_detect = death.is_none_or(|d| d > detect);
            if eff > cap && alive_at_detect {
                if let Some((bcore, bstart)) = self.try_pick_core(detect, Some(core)) {
                    let bdur = dur * self.cluster.faults().slowdown(bcore);
                    let bend = bstart + bdur;
                    let backup_survives = self.death_of(bcore).is_none_or(|d| bend <= d);
                    if backup_survives && bend < orig_end {
                        // Original killed when the backup finishes (or its
                        // node dies first — whichever comes sooner).
                        let orig_stop = death.map_or(bend, |d| d.min(bend));
                        self.set_core_free(core, orig_stop);
                        self.report.lost_time_s += orig_stop - start;
                        self.report.retries += 1;
                        self.record_task_event(core, ready, start, orig_stop, true, false);
                        return TaskAttempt::Done(
                            self.place_attempt(bcore, detect, bstart, bdur, true),
                        );
                    }
                }
            }
        }

        if let Some(died_at) = death {
            // Killed mid-task: the core was busy until the death and
            // that work is lost.
            self.set_core_free(core, died_at);
            self.report.lost_time_s += died_at - start;
            self.record_task_event(core, ready, start, died_at, true, false);
            return TaskAttempt::Killed {
                core,
                start,
                died_at,
            };
        }
        TaskAttempt::Done(self.place(core, ready, start, eff))
    }

    /// Schedule a task on a specific core (SPMD rank pinning). Straggler
    /// slowdowns apply; a pinned task has nowhere to retry, so placing it
    /// on a core whose node dies mid-task is a panic (SPMD jobs abort —
    /// engines with that semantic check the plan themselves first).
    pub fn run_task_on(&mut self, core: usize, ready: f64, dur: f64) -> TaskPlacement {
        assert!(core < self.core_free.len(), "core {core} out of range");
        let start = self.core_free[core].max(ready);
        let eff = dur * self.cluster.faults().slowdown(core);
        if let Some(died_at) = self.death_of(core) {
            assert!(
                start + eff <= died_at,
                "pinned core {core} dies at {died_at}s mid-task"
            );
        }
        self.place(core, ready, start, eff)
    }

    /// The core the `k`-th task of a batch released at time `at` will land
    /// on, assuming all surviving cores are idle by `at` (the post-barrier
    /// dispatch pattern): surviving cores ordered by (free time, id),
    /// wrapping if the batch exceeds the core count. Engines use this to
    /// predict reduce-task placement for locality attribution.
    pub fn nth_free_core(&self, at: f64, k: usize) -> usize {
        let mut order: Vec<(f64, usize)> = self
            .core_free
            .iter()
            .enumerate()
            .filter(|&(c, &free)| {
                self.core_admitted(c)
                    && self
                        .death_of(c)
                        .is_none_or(|died_at| free.max(at) < died_at)
            })
            .map(|(c, &free)| (free.max(at), c))
            .collect();
        assert!(!order.is_empty(), "no surviving cores");
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        order[k % order.len()].1
    }

    fn place(&mut self, core: usize, ready: f64, start: f64, dur: f64) -> TaskPlacement {
        self.place_attempt(core, ready, start, dur, false)
    }

    fn place_attempt(
        &mut self,
        core: usize,
        ready: f64,
        start: f64,
        dur: f64,
        speculative: bool,
    ) -> TaskPlacement {
        let end = start + dur;
        self.set_core_free(core, end);
        self.record_task_event(core, ready, start, end, false, speculative);
        self.report.tasks += 1;
        self.report.compute_s += dur;
        self.report.makespan_s = self.report.makespan_s.max(end);
        TaskPlacement { core, start, end }
    }

    fn record_task_event(
        &mut self,
        core: usize,
        ready: f64,
        start: f64,
        end: f64,
        killed: bool,
        speculative: bool,
    ) {
        let Some(trace) = &mut self.report.trace else {
            return;
        };
        let seq = self.trace_seq;
        self.trace_seq += 1;
        if self.trace_stride > 1 && !seq.is_multiple_of(self.trace_stride as u64) {
            return;
        }
        trace.record(TraceEvent {
            task: trace.next_id(),
            core,
            start_s: start,
            end_s: end,
            killed,
            ready_s: ready.min(start),
            phase: self.phase_sym,
            kind: EventKind::Task {
                label: self.label_sym,
                speculative,
            },
        });
    }

    fn record_network_event(
        &mut self,
        kind: EventKind,
        track: usize,
        start_s: f64,
        end_s: f64,
        killed: bool,
    ) {
        if let Some(trace) = &mut self.report.trace {
            trace.record(TraceEvent {
                task: trace.next_id(),
                core: track,
                start_s,
                end_s: end_s.max(start_s),
                killed,
                ready_s: start_s,
                phase: self.phase_sym,
                kind,
            });
        }
    }

    /// Record a point-to-point transfer (shuffle fetch, staging, gather
    /// leg). No core is occupied. No-op unless tracing is enabled.
    pub fn record_fetch(
        &mut self,
        from_node: usize,
        to_node: usize,
        bytes: u64,
        start_s: f64,
        end_s: f64,
    ) {
        self.record_network_event(
            EventKind::Fetch {
                from_node,
                to_node,
                bytes,
            },
            to_node,
            start_s,
            end_s,
            false,
        );
    }

    /// Record a transfer lost on the wire (paid for, then re-sent).
    pub fn record_fetch_lost(
        &mut self,
        from_node: usize,
        to_node: usize,
        bytes: u64,
        start_s: f64,
        end_s: f64,
    ) {
        self.record_network_event(
            EventKind::Fetch {
                from_node,
                to_node,
                bytes,
            },
            to_node,
            start_s,
            end_s,
            true,
        );
    }

    /// Record one broadcast round to `dest_nodes` destinations.
    pub fn record_broadcast(&mut self, bytes: u64, dest_nodes: usize, start_s: f64, end_s: f64) {
        self.record_network_event(
            EventKind::Broadcast { bytes, dest_nodes },
            0,
            start_s,
            end_s,
            false,
        );
    }

    /// Record a recovery window (failure detection, re-enqueue, recompute
    /// dispatch) labelled for critical-path attribution.
    pub fn record_recovery(&mut self, label: &str, start_s: f64, end_s: f64) {
        let Some(trace) = &mut self.report.trace else {
            return;
        };
        let label = trace.intern(label);
        self.record_network_event(EventKind::Recovery { label }, 0, start_s, end_s, false);
    }

    /// Record a stale result rejected by fencing: a zombie attempt's
    /// delivery (suspicion at `start_s`, arrival at `end_s`) discarded by
    /// its attempt epoch / generation number. Bumps
    /// `report.fenced_results` whether or not tracing is on — the
    /// exactly-once oracle counts fences, not trace events — and, when
    /// tracing, records an [`EventKind::Fenced`] window labelled with the
    /// engine's fencing mechanism (`"stale-shuffle-epoch"`,
    /// `"db-generation"`, …).
    pub fn record_fenced(&mut self, label: &str, start_s: f64, end_s: f64) {
        self.report.fenced_results += 1;
        let Some(trace) = &mut self.report.trace else {
            return;
        };
        let label = trace.intern(label);
        self.record_network_event(EventKind::Fenced { label }, 0, start_s, end_s, false);
    }

    // ---- per-node memory model ----

    /// Resident bytes currently reserved on `node`.
    pub fn mem_resident(&self, node: usize) -> u64 {
        self.mem_resident[node]
    }

    /// Effective memory budget of `node` at virtual time `at_s` (profile
    /// limit, shrunk by any fault-plan memory fault in effect by then).
    pub fn mem_budget(&self, node: usize, at_s: f64) -> u64 {
        self.cluster.mem_budget(node, at_s)
    }

    /// Try to reserve `bytes` of resident memory on `node` against the
    /// budget in effect at `at_s`. On success the node's high-water mark is
    /// advanced and `true` is returned; on failure nothing changes and the
    /// engine must degrade (spill, evict, queue, chunk, or fail typed).
    pub fn try_reserve_memory(&mut self, node: usize, bytes: u64, at_s: f64) -> bool {
        let budget = self.cluster.mem_budget(node, at_s);
        let want = self.mem_resident[node].saturating_add(bytes);
        if want > budget {
            return false;
        }
        self.mem_resident[node] = want;
        self.note_high_water(node);
        true
    }

    /// Reserve `bytes` on `node` unconditionally (engines that model their
    /// own thresholds — Dask's memory manager — track overshoot and react
    /// to it themselves). The high-water mark still advances.
    pub fn force_reserve_memory(&mut self, node: usize, bytes: u64) {
        self.mem_resident[node] = self.mem_resident[node].saturating_add(bytes);
        self.note_high_water(node);
    }

    /// Release `bytes` of resident memory on `node` (saturating).
    pub fn release_memory(&mut self, node: usize, bytes: u64) {
        self.mem_resident[node] = self.mem_resident[node].saturating_sub(bytes);
    }

    fn note_high_water(&mut self, node: usize) {
        if self.report.mem_high_water[node] < self.mem_resident[node] {
            self.report.mem_high_water[node] = self.mem_resident[node];
        }
    }

    /// Record `bytes` spilled to local disk on `node` over
    /// `[start_s, end_s)` (the caller charges the disk time itself via
    /// [`MachineProfile::disk_time`](crate::MachineProfile::disk_time)).
    pub fn record_spill(&mut self, node: usize, bytes: u64, start_s: f64, end_s: f64) {
        self.report.bytes_spilled += bytes;
        self.record_network_event(
            EventKind::Spill { node, bytes },
            node,
            start_s,
            end_s,
            false,
        );
    }

    /// Record `bytes` of cached state evicted from `node` at `at_s` and
    /// release them from the resident ledger.
    pub fn record_evict(&mut self, node: usize, bytes: u64, at_s: f64) {
        self.release_memory(node, bytes);
        self.report.bytes_evicted += bytes;
        self.record_network_event(EventKind::Evict { node, bytes }, node, at_s, at_s, false);
    }

    /// Record a streaming ingestion pause on `node` from `start_s` to
    /// `end_s`: resident window state hit the memory budget and the
    /// pipeline waited for a scheduled budget change instead of OOMing
    /// (the backpressure contract).
    pub fn record_backpressure(&mut self, node: usize, start_s: f64, end_s: f64) {
        self.record_network_event(
            EventKind::Backpressure { node },
            node,
            start_s,
            end_s,
            false,
        );
    }

    /// Record a worker on `node` being OOM-killed at `at_s` (Dask's
    /// terminate threshold, a pilot agent shot by the batch system).
    pub fn record_oom_kill(&mut self, node: usize, at_s: f64) {
        self.report.oom_kills += 1;
        self.record_network_event(EventKind::OomKill { node }, node, at_s, at_s, true);
    }

    // ---- service-queue events (mdtaskd) ----

    /// Record a job entering `tenant`'s service queue at `at_s`.
    pub fn record_enqueue(&mut self, tenant: usize, job: usize, at_s: f64) {
        self.record_network_event(EventKind::Enqueue { tenant, job }, 0, at_s, at_s, false);
    }

    /// Record a queued job being admitted to the cluster at `at_s`; the
    /// event's ready time is the enqueue time, so `start_s - ready_s` is
    /// the job's queue wait (surfaced by [`crate::Metrics`]).
    pub fn record_admit(&mut self, tenant: usize, job: usize, enqueued_s: f64, at_s: f64) {
        if let Some(trace) = &mut self.report.trace {
            trace.record(TraceEvent {
                task: trace.next_id(),
                core: 0,
                start_s: at_s,
                end_s: at_s,
                killed: false,
                ready_s: enqueued_s.min(at_s),
                phase: self.phase_sym,
                kind: EventKind::Admit { tenant, job },
            });
        }
    }

    /// Record a job refused typed (backpressure, quota, or capacity) at
    /// `at_s` instead of being queued or run.
    pub fn record_reject(&mut self, tenant: usize, job: usize, at_s: f64) {
        self.record_network_event(EventKind::Reject { tenant, job }, 0, at_s, at_s, true);
    }

    /// Cap the cores on `node` that admission control lets run tasks
    /// (pilot-style: concurrency bounded by declared working-set size).
    /// The cap is clamped to the node's physical core count.
    pub fn set_node_core_limit(&mut self, node: usize, limit: usize) {
        let per_node = self.cluster.profile.cores_per_node;
        let limit = limit.min(per_node);
        self.node_core_limit[node] = limit;
        // Re-key the node's cores in the index: closed cores read +∞ (never
        // picked), re-opened ones resume at their tracked free time.
        let base = node * per_node;
        for i in 0..per_node {
            let c = base + i;
            if c >= self.core_free.len() {
                break;
            }
            let key = if i < limit {
                self.core_free[c]
            } else {
                f64::INFINITY
            };
            self.index.set_key(c, key);
        }
    }

    /// The admission-control core cap currently set for `node`.
    pub fn node_core_limit(&self, node: usize) -> usize {
        self.node_core_limit[node]
    }

    /// Virtual time when every core is idle again (O(1): maintained
    /// incrementally by [`Self::set_core_free`]).
    pub fn all_idle_at(&self) -> f64 {
        self.max_free
    }

    /// Virtual time when core `c` is next free.
    pub fn core_free_at(&self, c: usize) -> f64 {
        self.core_free[c]
    }

    /// Advance the simulation's observed makespan to at least `t` (used for
    /// driver-side phases such as a final reduce or job teardown).
    pub fn advance_makespan(&mut self, t: f64) {
        self.report.makespan_s = self.report.makespan_s.max(t);
    }

    /// Mutable access to the accumulated report (engines add comm/overhead
    /// charges and phases).
    pub fn report_mut(&mut self) -> &mut SimReport {
        &mut self.report
    }

    /// Finish and return the report.
    pub fn into_report(self) -> SimReport {
        self.report
    }

    pub fn report(&self) -> &SimReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::fault::FaultPlan;

    fn exec(cores: usize) -> SimExecutor {
        SimExecutor::new(Cluster::builder().cores_per_node(cores).build())
    }

    /// `nodes` nodes of `cores` cores each, with a fault plan.
    fn faulty(cores: usize, nodes: usize, plan: FaultPlan) -> SimExecutor {
        SimExecutor::new(
            Cluster::builder()
                .nodes(nodes)
                .cores_per_node(cores)
                .fault_plan(plan)
                .build(),
        )
    }

    #[test]
    fn fills_idle_cores_first() {
        let mut e = exec(2);
        let a = e.run_task(0.0, 1.0);
        let b = e.run_task(0.0, 1.0);
        let c = e.run_task(0.0, 1.0);
        assert_ne!(a.core, b.core);
        assert_eq!(a.start, 0.0);
        assert_eq!(b.start, 0.0);
        assert_eq!(c.start, 1.0, "third task waits for a free core");
        assert_eq!(e.report().makespan_s, 2.0);
    }

    #[test]
    fn respects_ready_time() {
        let mut e = exec(4);
        let p = e.run_task(5.0, 1.0);
        assert_eq!(p.start, 5.0);
        assert_eq!(p.end, 6.0);
    }

    #[test]
    fn perfect_speedup_for_divisible_work() {
        // 64 unit tasks on 8 cores -> makespan 8; on 16 cores -> 4.
        let mut e8 = exec(8);
        for _ in 0..64 {
            e8.run_task(0.0, 1.0);
        }
        let mut e16 = exec(16);
        for _ in 0..64 {
            e16.run_task(0.0, 1.0);
        }
        assert_eq!(e8.report().makespan_s, 8.0);
        assert_eq!(e16.report().makespan_s, 4.0);
    }

    #[test]
    fn pinned_tasks_serialize_on_their_core() {
        let mut e = exec(2);
        let a = e.run_task_on(0, 0.0, 1.0);
        let b = e.run_task_on(0, 0.0, 1.0);
        assert_eq!(a.end, 1.0);
        assert_eq!(b.start, 1.0);
        assert_eq!(e.core_free_at(1), 0.0);
    }

    #[test]
    fn makespan_monotone() {
        let mut e = exec(2);
        let mut last = 0.0;
        for i in 0..20 {
            e.run_task(0.0, 0.1 * (i % 3) as f64);
            assert!(e.report().makespan_s >= last);
            last = e.report().makespan_s;
        }
    }

    #[test]
    fn trace_records_placements() {
        let mut e = exec(2);
        e.enable_trace();
        e.run_task(0.0, 1.0);
        e.run_task(0.0, 2.0);
        let t = e.trace().unwrap();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.span(), 2.0);
        assert!(t.gantt(2, 8).contains('#'));
    }

    #[test]
    fn trace_events_carry_phase_and_label() {
        let mut e = exec(1);
        e.enable_trace();
        e.set_phase("edge-discovery");
        e.set_task_label("strip");
        e.run_task(0.5, 1.0);
        let t = e.trace().unwrap();
        let ev = &t.events[0];
        assert_eq!(t.phase_of(ev), "edge-discovery");
        assert_eq!(t.label_of(ev), "strip");
        assert_eq!(ev.ready_s, 0.5);
    }

    #[test]
    fn phase_and_label_set_before_tracing_survive_enable() {
        let mut e = exec(1);
        e.set_phase("warmup");
        e.set_task_label("probe");
        e.enable_trace();
        e.run_task(0.0, 1.0);
        let t = e.trace().unwrap();
        assert_eq!(t.phase_of(&t.events[0]), "warmup");
        assert_eq!(t.label_of(&t.events[0]), "probe");
    }

    #[test]
    fn sampled_trace_keeps_every_nth_task_but_all_network_events() {
        let mut e = exec(4);
        e.enable_trace_sampled(4);
        for _ in 0..16 {
            e.run_task(0.0, 1.0);
        }
        e.record_fetch(0, 0, 64, 0.0, 0.5);
        e.record_broadcast(32, 1, 0.0, 0.25);
        let t = e.trace().unwrap();
        assert!(t.is_sampled());
        assert_eq!(t.sample_stride(), 4);
        let tasks = t.events.iter().filter(|ev| ev.occupies_core()).count();
        assert_eq!(tasks, 4, "every 4th of 16 attempts");
        let network = t.events.iter().filter(|ev| !ev.occupies_core()).count();
        assert_eq!(network, 2, "network events are never sampled");
        // The report still counts everything.
        assert_eq!(e.report().tasks, 16);
    }

    #[test]
    fn untraced_run_still_counts_everything() {
        let mut e = exec(2);
        for _ in 0..8 {
            e.run_task(0.0, 1.0);
        }
        e.record_fetch(0, 0, 64, 0.0, 0.5);
        assert!(e.trace().is_none());
        assert_eq!(e.report().tasks, 8);
        assert_eq!(e.report().makespan_s, 4.0);
    }

    #[test]
    fn network_events_record_without_occupying_cores() {
        let mut e = exec(1);
        e.enable_trace();
        e.run_task(0.0, 1.0);
        e.record_fetch(0, 1, 4096, 1.0, 1.5);
        e.record_broadcast(1024, 2, 0.0, 0.25);
        e.record_recovery("recompute", 1.0, 1.25);
        let t = e.trace().unwrap();
        assert_eq!(t.events.len(), 4);
        assert_eq!(e.core_free_at(0), 1.0, "network events hold no core");
        // The trace lives in the report, so clones keep it.
        assert!(e.report().trace.is_some());
    }

    #[test]
    fn advance_makespan_only_grows() {
        let mut e = exec(1);
        e.run_task(0.0, 2.0);
        e.advance_makespan(1.0);
        assert_eq!(e.report().makespan_s, 2.0);
        e.advance_makespan(3.0);
        assert_eq!(e.report().makespan_s, 3.0);
    }

    // ---- fault injection ----

    #[test]
    fn attempt_crossing_node_death_is_killed() {
        // 2 nodes × 1 core; node 0 dies at t=1, task needs [0, 2).
        let mut e = faulty(1, 2, FaultPlan::none().kill_node(0, 1.0));
        match e.run_task_attempt(0.0, 2.0) {
            TaskAttempt::Killed {
                core,
                start,
                died_at,
            } => {
                assert_eq!(core, 0);
                assert_eq!(start, 0.0);
                assert_eq!(died_at, 1.0);
            }
            other => panic!("expected a kill, got {other:?}"),
        }
        assert_eq!(e.report().lost_time_s, 1.0);
        assert_eq!(
            e.report().tasks,
            0,
            "killed attempts are not completed tasks"
        );
        // The dead node accepts no further placements: the retry wrapper
        // lands the rerun on node 1.
        let p = e.run_task(1.0, 2.0);
        assert_eq!(p.core, 1);
    }

    #[test]
    fn run_task_retries_until_done_and_counts() {
        let mut e = faulty(1, 2, FaultPlan::none().kill_node(0, 1.0));
        let p = e.run_task(0.0, 2.0);
        assert_eq!(p.core, 1, "rerun lands on the surviving node");
        assert_eq!(p.start, 1.0, "rerun starts when the death is observed");
        assert_eq!(e.report().retries, 1);
        assert_eq!(e.report().lost_time_s, 1.0);
        assert_eq!(e.report().tasks, 1);
    }

    #[test]
    fn dead_node_is_never_chosen_after_death() {
        let mut e = faulty(2, 2, FaultPlan::none().kill_node(0, 5.0));
        for _ in 0..6 {
            let p = e.run_task(6.0, 1.0);
            assert_eq!(e.cluster().node_of_core(p.core), 1);
        }
    }

    #[test]
    fn straggler_core_stretches_tasks() {
        let mut e = faulty(2, 1, FaultPlan::none().slow_core(0, 4.0));
        let a = e.run_task(0.0, 1.0); // core 0: 4× slower
        let b = e.run_task(0.0, 1.0); // core 1: nominal
        assert_eq!(a.end - a.start, 4.0);
        assert_eq!(b.end - b.start, 1.0);
    }

    #[test]
    fn speculative_backup_occupies_its_core_and_kills_the_straggler() {
        // 2 cores, core 0 slowed 10×. Cap 2.0: detected at t=2, backup
        // runs [2, 3) on core 1 and wins; the original is killed at t=3.
        let plan = FaultPlan::none().slow_core(0, 10.0);
        let mut capped = faulty(2, 1, plan.clone());
        capped.enable_trace();
        let got = capped.run_task_attempt_with(
            0.0,
            1.0,
            TaskOpts {
                speculation_cap: Some(2.0),
                ..Default::default()
            },
        );
        match got {
            TaskAttempt::Done(p) => {
                assert_eq!(p.core, 1, "backup avoids the straggler core");
                assert_eq!(p.start, 2.0, "backup launches at detection time");
                assert_eq!(p.end, 3.0);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(capped.report().retries, 1, "the backup attempt is a retry");
        // Both cores were genuinely occupied: the straggler until its kill,
        // the backup until it finished.
        assert_eq!(capped.core_free_at(0), 3.0);
        assert_eq!(capped.core_free_at(1), 3.0);
        assert_eq!(capped.report().lost_time_s, 3.0);
        let t = capped.trace().unwrap();
        assert_eq!(t.events.len(), 2, "both attempts appear in the trace");
        assert!(t.events[0].killed, "the losing original is killed");
        let EventKind::Task { speculative, .. } = &t.events[1].kind else {
            panic!("expected a task event");
        };
        assert!(*speculative, "the winner is marked speculative");

        let mut uncapped = faulty(2, 1, plan);
        let p = uncapped.run_task(0.0, 1.0);
        assert_eq!(p.end, 10.0);
        assert_eq!(uncapped.report().retries, 0);
    }

    #[test]
    fn speculation_without_a_spare_core_runs_to_completion() {
        // Single core: there is nowhere to launch a backup, so the
        // straggler finishes at its stretched duration and no phantom
        // retry is counted.
        let mut e = faulty(1, 1, FaultPlan::none().slow_core(0, 10.0));
        let got = e.run_task_attempt_with(
            0.0,
            1.0,
            TaskOpts {
                speculation_cap: Some(2.0),
                ..Default::default()
            },
        );
        match got {
            TaskAttempt::Done(p) => assert_eq!(p.end, 10.0),
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(e.report().retries, 0);
    }

    #[test]
    fn backup_only_launches_when_it_would_finish_earlier() {
        // Core 1 is slower than the remaining straggler time: launching a
        // backup there would lose, so none launches.
        let plan = FaultPlan::none().slow_core(0, 3.0).slow_core(1, 10.0);
        let mut e = faulty(2, 1, plan);
        let got = e.run_task_attempt_with(
            0.0,
            1.0,
            TaskOpts {
                speculation_cap: Some(2.0),
                ..Default::default()
            },
        );
        match got {
            TaskAttempt::Done(p) => {
                assert_eq!(p.core, 0);
                assert_eq!(p.end, 3.0);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(e.report().retries, 0);
        assert_eq!(e.core_free_at(1), 0.0, "no phantom backup occupancy");
    }

    #[test]
    fn avoid_core_places_elsewhere() {
        let mut e = exec(2);
        let got = e.run_task_attempt_with(
            0.0,
            1.0,
            TaskOpts {
                avoid_core: Some(0),
                ..Default::default()
            },
        );
        match got {
            TaskAttempt::Done(p) => assert_eq!(p.core, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nth_free_core_orders_survivors() {
        // 2 nodes × 2 cores, node 1 (cores 2-3) dead at t=1.
        let e = faulty(2, 2, FaultPlan::none().kill_node(1, 1.0));
        // Before the death every core is available in id order.
        assert_eq!(e.nth_free_core(0.0, 0), 0);
        assert_eq!(e.nth_free_core(0.0, 2), 2);
        // After the death only cores 0-1 remain, and the batch wraps.
        assert_eq!(e.nth_free_core(2.0, 0), 0);
        assert_eq!(e.nth_free_core(2.0, 1), 1);
        assert_eq!(e.nth_free_core(2.0, 2), 0);
    }

    #[test]
    fn killed_attempts_appear_in_trace() {
        let mut e = faulty(1, 2, FaultPlan::none().kill_node(0, 1.0));
        e.enable_trace();
        e.run_task(0.0, 2.0);
        let t = e.trace().unwrap();
        assert_eq!(t.events.len(), 2);
        assert!(t.events[0].killed);
        assert!(!t.events[1].killed);
    }

    #[test]
    #[should_panic]
    fn all_nodes_dead_panics() {
        let mut e = faulty(1, 1, FaultPlan::none().kill_node(0, 1.0));
        e.run_task(2.0, 1.0);
    }

    // ---- earliest-free-core index vs. linear-scan oracle ----
    //
    // ISSUE-6 satellite: the tournament tree must pick the *identical*
    // (core, start) pair as the retired linear scan in every reachable
    // state — randomized free times, node deaths, admission limits, and
    // avoid sets. The linear scan is kept in-tree as the oracle.

    /// Deterministic splitmix64, the same generator the chaos harness
    /// seeds its plans with.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit(state: &mut u64) -> f64 {
        (mix(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn index_matches_linear_scan_on_randomized_states() {
        for seed in 0..40u64 {
            let mut rng = seed.wrapping_mul(0x5851f42d4c957f2d) + 1;
            let nodes = 1 + (mix(&mut rng) % 5) as usize;
            let per_node = 1 + (mix(&mut rng) % 7) as usize;
            let mut plan = FaultPlan::none();
            for node in 0..nodes {
                if unit(&mut rng) < 0.4 {
                    plan = plan.kill_node(node, unit(&mut rng) * 8.0);
                }
            }
            for c in 0..nodes * per_node {
                if unit(&mut rng) < 0.2 {
                    plan = plan.slow_core(c, 1.0 + unit(&mut rng) * 4.0);
                }
            }
            let mut e = faulty(per_node, nodes, plan);
            // Random admission limits on some nodes.
            for node in 0..nodes {
                if unit(&mut rng) < 0.3 {
                    e.set_node_core_limit(node, (mix(&mut rng) % (per_node as u64 + 1)) as usize);
                }
            }
            // Random busy state, written through the tracked path.
            let cores = nodes * per_node;
            for _ in 0..cores * 2 {
                let c = (mix(&mut rng) % cores as u64) as usize;
                let bump = e.core_free_at(c) + unit(&mut rng) * 6.0;
                e.set_core_free(c, bump);
            }
            // Compare picks across a grid of release times and avoid sets.
            for _ in 0..64 {
                let ready = unit(&mut rng) * 10.0;
                let avoid = if unit(&mut rng) < 0.5 {
                    Some((mix(&mut rng) % cores as u64) as usize)
                } else {
                    None
                };
                let fast = e.try_pick_core(ready, avoid);
                let slow = e.try_pick_core_linear(ready, avoid);
                assert_eq!(
                    fast, slow,
                    "seed {seed}: index and linear scan disagree at \
                     ready={ready}, avoid={avoid:?}"
                );
            }
        }
    }

    #[test]
    fn index_tracks_admission_limit_changes() {
        let mut e = exec(4);
        e.set_core_free(0, 5.0);
        e.set_node_core_limit(0, 1); // only core 0 admitted, busy until 5
        assert_eq!(e.try_pick_core(0.0, None), Some((0, 5.0)));
        assert_eq!(e.try_pick_core(0.0, Some(0)), None, "sole core avoided");
        e.set_node_core_limit(0, 2); // core 1 re-opens, idle
        assert_eq!(e.try_pick_core(0.0, None), Some((1, 0.0)));
        e.set_node_core_limit(0, 0); // everything closed
        assert_eq!(e.try_pick_core(0.0, None), None);
    }

    #[test]
    fn linear_pick_mode_is_behaviorally_identical() {
        let plan = FaultPlan::none().kill_node(0, 2.0).slow_core(3, 3.0);
        let run = |linear: bool| {
            let mut e = faulty(2, 2, plan.clone());
            e.set_linear_pick(linear);
            e.enable_trace();
            for i in 0..12 {
                e.run_task(0.25 * (i % 4) as f64, 0.5 + 0.125 * (i % 3) as f64);
            }
            e.into_report()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn all_idle_at_matches_fold_over_core_free() {
        let mut e = faulty(2, 2, FaultPlan::none().kill_node(1, 3.0));
        assert_eq!(e.all_idle_at(), 0.0);
        for i in 0..10 {
            e.run_task(0.0, 0.5 + (i % 4) as f64 * 0.25);
            let fold = (0..4).map(|c| e.core_free_at(c)).fold(0.0, f64::max);
            assert_eq!(e.all_idle_at(), fold);
        }
    }

    // ---- retry policies ----

    use crate::policy::{PolicyError, RetryPolicy};

    #[test]
    fn policied_run_is_plain_placement_without_faults() {
        let mut e = exec(2);
        let p = e.run_task_policied(0.0, 1.0, &RetryPolicy::new(3)).unwrap();
        assert_eq!(p.start, 0.0);
        assert_eq!(p.end, 1.0);
        assert_eq!(e.report().retries, 0);
        assert_eq!(e.report().phase_total("recovery"), None);
    }

    #[test]
    fn policied_run_retries_with_detection_delay_and_backoff() {
        // Node 0 dies at t=1 mid-task; detection takes 0.5s and the first
        // backoff is 0.25s, so the rerun releases at 1.75 on node 1.
        let mut e = faulty(1, 2, FaultPlan::none().kill_node(0, 1.0));
        let policy = RetryPolicy::new(3)
            .with_detection_delay(0.5)
            .with_backoff(0.25, 2.0, 10.0);
        let p = e.run_task_policied(0.0, 2.0, &policy).unwrap();
        assert_eq!(p.core, 1);
        assert_eq!(p.start, 1.75);
        assert_eq!(e.report().retries, 1);
        assert_eq!(e.report().lost_time_s, 1.0);
        // The recovery phase covers death -> re-dispatch.
        assert!((e.report().phase_total("recovery").unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn policied_exhaustion_is_a_typed_error_not_a_panic() {
        // Node 0 dies at t=1, node 1 at t=2: both attempts of a 5s task
        // are killed, and with max_attempts = 2 that exhausts the policy.
        let plan = FaultPlan::none().kill_node(0, 1.0).kill_node(1, 2.0);
        let mut e = faulty(1, 2, plan);
        let got = e.run_task_policied(0.0, 5.0, &RetryPolicy::new(2));
        match got {
            Err(PolicyError::RetriesExhausted {
                attempts,
                last_failure_s,
            }) => {
                assert_eq!(attempts, 2);
                assert_eq!(last_failure_s, 2.0);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(e.report().retries, 1, "only the re-dispatch counts");
    }

    #[test]
    fn policied_all_dead_is_a_typed_error() {
        let mut e = faulty(1, 1, FaultPlan::none().kill_node(0, 1.0));
        let got = e.run_task_policied(2.0, 1.0, &RetryPolicy::new(3));
        assert!(matches!(got, Err(PolicyError::NoSurvivingCore { .. })));
    }

    #[test]
    fn watchdog_kills_straggler_attempt_and_retry_succeeds() {
        // Core 0 is 10x slow: the 1s task would take 10s, the 2s watchdog
        // kills it at t=2 (observed immediately) and the rerun lands on
        // core 1 at nominal speed.
        let mut e = faulty(2, 1, FaultPlan::none().slow_core(0, 10.0));
        let policy = RetryPolicy::new(3).with_timeout(2.0);
        let p = e.run_task_policied(0.0, 1.0, &policy).unwrap();
        assert_eq!(p.core, 1);
        assert_eq!(p.start, 2.0, "watchdog kills are observed instantly");
        assert_eq!(e.report().retries, 1);
        assert_eq!(e.report().lost_time_s, 2.0);
    }

    #[test]
    fn watchdog_exhaustion_surfaces_as_timeout() {
        // Both cores 10x slow: every attempt times out.
        let plan = FaultPlan::none().slow_core(0, 10.0).slow_core(1, 10.0);
        let mut e = faulty(2, 1, plan);
        let policy = RetryPolicy::new(2).with_timeout(2.0);
        match e.run_task_policied(0.0, 1.0, &policy) {
            Err(PolicyError::Timeout { attempt, .. }) => assert_eq!(attempt, 2),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    // ---- blacklist fallback audit (ISSUE-6 satellite) ----

    #[test]
    fn blacklisted_sole_survivor_is_readmitted_not_starved() {
        // 2 nodes × 1 core; node 1 dies at t=0 so core 0 — a 3× straggler
        // — is the only survivor. The watchdog kills attempt 1 and
        // blacklists core 0; with nowhere else to go, the scheduler must
        // fall back to it (and keep timing out) instead of failing with
        // NoSurvivingCore.
        let plan = FaultPlan::none().slow_core(0, 3.0).kill_node(1, 0.0);
        let mut e = faulty(1, 2, plan);
        e.enable_trace();
        let policy = RetryPolicy::new(3).with_timeout(2.0);
        match e.run_task_policied(0.0, 1.0, &policy) {
            Err(PolicyError::Timeout { attempt, .. }) => {
                assert_eq!(attempt, 3, "all attempts ran on the sole survivor");
            }
            other => panic!("expected a timeout on the sole survivor, got {other:?}"),
        }
        assert_eq!(e.report().retries, 2);
        // The concession is visible: one fallback record per re-pick of
        // the blacklisted core (attempts 2 and 3).
        let t = e.trace().unwrap();
        let fallbacks = t
            .events
            .iter()
            .filter(|ev| {
                matches!(ev.kind, EventKind::Recovery { .. })
                    && t.label_of(ev) == "blacklist-fallback"
            })
            .count();
        assert_eq!(fallbacks, 2);
    }

    #[test]
    fn blacklisted_sole_survivor_can_still_finish_the_job() {
        // Same sole-survivor shape, but the attempt dies to a *node death*
        // (core 0's node dies at t=1.5 under a 4s task) and the rerun —
        // after fallback — fits before... no second death, so it completes.
        // 2 nodes × 2 cores: node 1 dead at t=0; node 0 healthy. Core 0
        // straggles 5×, watchdog 2s. Attempt 1 → core 0 (earliest id),
        // killed at t=2, blacklisted. Attempt 2 → core 1 (no fallback
        // needed, a sibling survives) finishes at 3.
        let plan = FaultPlan::none().slow_core(0, 5.0).kill_node(1, 0.0);
        let mut e = faulty(2, 2, plan);
        e.enable_trace();
        let policy = RetryPolicy::new(3).with_timeout(2.0);
        let p = e.run_task_policied(0.0, 1.0, &policy).unwrap();
        assert_eq!(p.core, 1, "sibling survivor preferred over fallback");
        let t = e.trace().unwrap();
        assert!(
            !t.events
                .iter()
                .any(|ev| t.label_of(ev) == "blacklist-fallback"),
            "no fallback is recorded when a non-blacklisted core survives"
        );
    }

    #[test]
    fn deadline_fails_fast_without_placing() {
        let mut e = exec(1);
        let policy = RetryPolicy::new(3).with_deadline(1.0);
        let got = e.run_task_policied(0.0, 2.0, &policy);
        assert!(matches!(got, Err(PolicyError::DeadlineExceeded { .. })));
        assert_eq!(e.report().tasks, 0);
        assert_eq!(e.report().lost_time_s, 0.0, "nothing ran, nothing lost");
    }

    #[test]
    fn deadline_expiring_mid_backoff_fails_at_observation() {
        // Regression (ISSUE-7 satellite): node 0 kills the 2s attempt at
        // t=1, observed at t=1.5 (0.5s heartbeat). The 2s backoff would
        // redispatch at 3.5 — past the 3.0 deadline — so the policy must
        // fail *at the observation* (t=1.5), not sleep the backoff, record
        // a phantom recovery window, and discover the deadline at the next
        // placement.
        let plan = FaultPlan::none().kill_node(0, 1.0);
        let mut e = faulty(1, 2, plan);
        let policy = RetryPolicy::new(3)
            .with_detection_delay(0.5)
            .with_backoff(2.0, 2.0, 10.0)
            .with_deadline(3.0);
        match e.run_task_policied(0.0, 2.0, &policy) {
            Err(PolicyError::DeadlineExceeded { deadline_s, at_s }) => {
                assert_eq!(deadline_s, 3.0);
                assert_eq!(at_s, 1.5, "fails when the loss is observed");
            }
            other => panic!("expected prompt DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(e.report().retries, 0, "the doomed retry never dispatched");
        assert_eq!(
            e.report().phase_total("recovery"),
            None,
            "no recovery window for a backoff that never slept"
        );
        assert_eq!(
            e.report().lost_time_s,
            1.0,
            "the killed attempt is still charged"
        );
        // A deadline the backoff *does* fit keeps the retry path intact.
        let mut ok = faulty(1, 2, FaultPlan::none().kill_node(0, 1.0));
        let relaxed = RetryPolicy::new(3)
            .with_detection_delay(0.5)
            .with_backoff(2.0, 2.0, 10.0)
            .with_deadline(6.0);
        let p = ok.run_task_policied(0.0, 2.0, &relaxed).unwrap();
        assert_eq!(p.start, 3.5, "redispatch after detection + backoff");
        assert_eq!(ok.report().retries, 1);
    }

    #[test]
    fn policied_run_is_deterministic() {
        let plan = FaultPlan::none().kill_node(0, 1.0).slow_core(2, 3.0);
        let run = || {
            let mut e = faulty(2, 2, plan.clone());
            e.enable_trace();
            let policy = RetryPolicy::new(4)
                .with_detection_delay(0.3)
                .with_backoff(0.1, 2.0, 5.0);
            for i in 0..8 {
                e.run_task_policied(0.0, 0.5 + 0.25 * (i % 3) as f64, &policy)
                    .unwrap();
            }
            e.into_report()
        };
        assert_eq!(run(), run(), "same plan, byte-identical report");
    }

    // ---- speculation x faults interaction audit ----
    //
    // ISSUE-3 satellite: pin `lost_time_s` / `retries` accounting when the
    // speculative backup's own core is straggled or killed.

    #[test]
    fn straggled_backup_still_wins_and_accounting_is_exact() {
        // Core 0 slowed 10x, core 1 slowed 4x. Cap 2.0: the backup runs
        // [2, 6) on core 1 and still beats the original's t=10 finish, so
        // the original is killed at t=6. Lost work = [0, 6), one retry.
        let plan = FaultPlan::none().slow_core(0, 10.0).slow_core(1, 4.0);
        let mut e = faulty(2, 1, plan);
        let got = e.run_task_attempt_with(
            0.0,
            1.0,
            TaskOpts {
                speculation_cap: Some(2.0),
                ..Default::default()
            },
        );
        match got {
            TaskAttempt::Done(p) => {
                assert_eq!(p.core, 1);
                assert_eq!(p.end, 6.0, "backup pays its own straggler factor");
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(e.report().retries, 1);
        assert_eq!(e.report().lost_time_s, 6.0, "original occupied [0, 6)");
        assert_eq!(e.core_free_at(0), 6.0);
        assert_eq!(e.core_free_at(1), 6.0);
    }

    #[test]
    fn backup_on_a_dying_node_is_never_launched() {
        // 2 nodes x 1 core; core 0 (node 0) slowed 10x, node 1 dies at
        // t=2.5 — before the would-be backup's [2, 3) run finishes. The
        // scheduler must not launch a backup that cannot survive: the
        // straggler runs to completion and no phantom retry or lost work
        // appears.
        let plan = FaultPlan::none().slow_core(0, 10.0).kill_node(1, 2.5);
        let mut e = faulty(1, 2, plan);
        let got = e.run_task_attempt_with(
            0.0,
            1.0,
            TaskOpts {
                speculation_cap: Some(2.0),
                ..Default::default()
            },
        );
        match got {
            TaskAttempt::Done(p) => {
                assert_eq!(p.core, 0);
                assert_eq!(p.end, 10.0);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(e.report().retries, 0, "no retry for an unlaunched backup");
        assert_eq!(e.report().lost_time_s, 0.0);
        assert_eq!(e.core_free_at(1), 0.0, "dying node never occupied");
    }

    #[test]
    fn original_dying_under_a_winning_backup_charges_only_to_its_death() {
        // Core 0 (node 0) slowed 10x and node 0 dies at t=4; backup runs
        // [2, 3) on node 1 and wins. The original is stopped at
        // min(death, backup end) = 3, so lost work is [0, 3) even though
        // its node lives until t=4.
        let plan = FaultPlan::none().slow_core(0, 10.0).kill_node(0, 4.0);
        let mut e = faulty(1, 2, plan);
        let got = e.run_task_attempt_with(
            0.0,
            1.0,
            TaskOpts {
                speculation_cap: Some(2.0),
                ..Default::default()
            },
        );
        match got {
            TaskAttempt::Done(p) => {
                assert_eq!(p.core, 1);
                assert_eq!(p.start, 2.0);
                assert_eq!(p.end, 3.0);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(e.report().retries, 1);
        assert_eq!(e.report().lost_time_s, 3.0);
        assert_eq!(e.core_free_at(0), 3.0, "straggler core freed at the kill");
    }

    #[test]
    fn original_dying_before_backup_launch_charges_to_its_death() {
        // Node 0 dies at t=2.5, after the t=2 detection: the backup
        // launches (original alive at detection), the original dies at
        // 2.5 < backup end 3.0, so lost work is [0, 2.5).
        let plan = FaultPlan::none().slow_core(0, 10.0).kill_node(0, 2.5);
        let mut e = faulty(1, 2, plan);
        let got = e.run_task_attempt_with(
            0.0,
            1.0,
            TaskOpts {
                speculation_cap: Some(2.0),
                ..Default::default()
            },
        );
        match got {
            TaskAttempt::Done(p) => assert_eq!((p.core, p.end), (1, 3.0)),
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(e.report().retries, 1);
        assert_eq!(e.report().lost_time_s, 2.5);
        assert_eq!(e.core_free_at(0), 2.5);
    }

    // ---- per-node memory model ----

    /// `nodes` nodes of `cores` cores, small memory, with a fault plan.
    fn small_mem(cores: usize, nodes: usize, mem: u64, plan: FaultPlan) -> SimExecutor {
        SimExecutor::new(
            Cluster::builder()
                .nodes(nodes)
                .cores_per_node(cores)
                .mem_budget(mem)
                .fault_plan(plan)
                .build(),
        )
    }

    #[test]
    fn reserve_tracks_high_water_per_node() {
        let mut e = small_mem(1, 2, 1000, FaultPlan::none());
        assert!(e.try_reserve_memory(0, 600, 0.0));
        assert!(e.try_reserve_memory(0, 400, 0.0));
        assert!(!e.try_reserve_memory(0, 1, 0.0), "budget exhausted");
        e.release_memory(0, 500);
        assert_eq!(e.mem_resident(0), 500);
        assert!(e.try_reserve_memory(1, 300, 0.0));
        assert_eq!(e.report().mem_high_water, vec![1000, 300]);
    }

    #[test]
    fn mem_shrink_fault_tightens_the_budget_mid_run() {
        let plan = FaultPlan::none().shrink_memory(0, 5.0, 400);
        let mut e = small_mem(1, 1, 1000, plan);
        assert!(e.try_reserve_memory(0, 500, 0.0), "full budget before");
        e.release_memory(0, 500);
        assert!(!e.try_reserve_memory(0, 500, 5.0), "shrunk budget after");
        assert!(e.try_reserve_memory(0, 400, 5.0));
    }

    #[test]
    fn spill_evict_oom_events_hit_trace_and_report() {
        let mut e = small_mem(1, 2, 1000, FaultPlan::none());
        e.enable_trace();
        e.force_reserve_memory(1, 800);
        e.record_spill(1, 300, 1.0, 1.5);
        e.record_evict(1, 200, 2.0);
        e.record_oom_kill(0, 3.0);
        assert_eq!(e.mem_resident(1), 600, "eviction releases residency");
        assert_eq!(e.report().bytes_spilled, 300);
        assert_eq!(e.report().bytes_evicted, 200);
        assert_eq!(e.report().oom_kills, 1);
        assert_eq!(e.report().mem_high_water, vec![0, 800]);
        let t = e.trace().unwrap();
        assert_eq!(t.events.len(), 3);
        assert!(matches!(
            t.events[0].kind,
            EventKind::Spill {
                node: 1,
                bytes: 300
            }
        ));
        assert!(matches!(
            t.events[1].kind,
            EventKind::Evict {
                node: 1,
                bytes: 200
            }
        ));
        assert!(matches!(t.events[2].kind, EventKind::OomKill { node: 0 }));
    }

    #[test]
    fn admission_limit_bounds_concurrency_per_node() {
        // 2 nodes x 4 cores; node 0 capped to 1 usable core. Eight unit
        // tasks: node 0 runs them serially on core 0 while node 1 runs
        // four wide, so placements never touch cores 1-3.
        let mut e = faulty(4, 2, FaultPlan::none());
        e.set_node_core_limit(0, 1);
        for _ in 0..8 {
            let p = e.run_task(0.0, 1.0);
            assert!(p.core == 0 || p.core >= 4, "cores 1-3 are closed");
        }
        assert_eq!(e.core_free_at(1), 0.0);
        assert_eq!(e.node_core_limit(0), 1);
        assert_eq!(e.node_core_limit(1), 4);
        // nth_free_core sees only admitted survivors.
        assert_eq!(e.nth_free_core(10.0, 1), 4);
    }
}
