//! Simulated core timelines with list scheduling.

use crate::cluster::Cluster;
use crate::report::SimReport;
use crate::trace::Trace;

/// Where and when a simulated task ran.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskPlacement {
    pub core: usize,
    pub start: f64,
    pub end: f64,
}

/// Greedy list scheduler over the cluster's simulated cores.
///
/// Each core tracks the virtual time at which it becomes free. A task with
/// release time `ready` and duration `dur` is placed on the core giving the
/// earliest start (`max(ready, core_free)`), ties broken by lowest core id
/// — the behaviour of a work-conserving task scheduler with an idle worker
/// pool, which is what Spark executors, Dask workers and pilot agents all
/// approximate.
#[derive(Clone, Debug)]
pub struct SimExecutor {
    cluster: Cluster,
    core_free: Vec<f64>,
    report: SimReport,
    trace: Option<Trace>,
    next_trace_id: usize,
}

impl SimExecutor {
    pub fn new(cluster: Cluster) -> Self {
        let cores = cluster.total_cores();
        SimExecutor {
            cluster,
            core_free: vec![0.0; cores],
            report: SimReport::default(),
            trace: None,
            next_trace_id: 0,
        }
    }

    /// Start recording a schedule trace (per-task placements).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::default());
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Schedule a task on the best core. `dur` is in simulated seconds
    /// (already scaled by the machine profile).
    pub fn run_task(&mut self, ready: f64, dur: f64) -> TaskPlacement {
        assert!(dur >= 0.0 && ready >= 0.0, "negative time");
        let mut best_core = 0usize;
        let mut best_start = f64::INFINITY;
        for (c, &free) in self.core_free.iter().enumerate() {
            let start = free.max(ready);
            if start < best_start {
                best_start = start;
                best_core = c;
                if start <= ready {
                    break; // cannot start earlier than the release time
                }
            }
        }
        self.place(best_core, best_start, dur)
    }

    /// Schedule a task on a specific core (SPMD rank pinning).
    pub fn run_task_on(&mut self, core: usize, ready: f64, dur: f64) -> TaskPlacement {
        assert!(core < self.core_free.len(), "core {core} out of range");
        let start = self.core_free[core].max(ready);
        self.place(core, start, dur)
    }

    fn place(&mut self, core: usize, start: f64, dur: f64) -> TaskPlacement {
        let end = start + dur;
        self.core_free[core] = end;
        if let Some(trace) = &mut self.trace {
            let id = self.next_trace_id;
            self.next_trace_id += 1;
            trace.push(id, core, start, end);
        }
        self.report.tasks += 1;
        self.report.compute_s += dur;
        self.report.makespan_s = self.report.makespan_s.max(end);
        TaskPlacement { core, start, end }
    }

    /// Virtual time when every core is idle again.
    pub fn all_idle_at(&self) -> f64 {
        self.core_free.iter().copied().fold(0.0, f64::max)
    }

    /// Virtual time when core `c` is next free.
    pub fn core_free_at(&self, c: usize) -> f64 {
        self.core_free[c]
    }

    /// Advance the simulation's observed makespan to at least `t` (used for
    /// driver-side phases such as a final reduce or job teardown).
    pub fn advance_makespan(&mut self, t: f64) {
        self.report.makespan_s = self.report.makespan_s.max(t);
    }

    /// Mutable access to the accumulated report (engines add comm/overhead
    /// charges and phases).
    pub fn report_mut(&mut self) -> &mut SimReport {
        &mut self.report
    }

    /// Finish and return the report.
    pub fn into_report(self) -> SimReport {
        self.report
    }

    pub fn report(&self) -> &SimReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{laptop, Cluster};

    fn exec(cores: usize) -> SimExecutor {
        let mut profile = laptop();
        profile.cores_per_node = cores;
        SimExecutor::new(Cluster::new(profile, 1))
    }

    #[test]
    fn fills_idle_cores_first() {
        let mut e = exec(2);
        let a = e.run_task(0.0, 1.0);
        let b = e.run_task(0.0, 1.0);
        let c = e.run_task(0.0, 1.0);
        assert_ne!(a.core, b.core);
        assert_eq!(a.start, 0.0);
        assert_eq!(b.start, 0.0);
        assert_eq!(c.start, 1.0, "third task waits for a free core");
        assert_eq!(e.report().makespan_s, 2.0);
    }

    #[test]
    fn respects_ready_time() {
        let mut e = exec(4);
        let p = e.run_task(5.0, 1.0);
        assert_eq!(p.start, 5.0);
        assert_eq!(p.end, 6.0);
    }

    #[test]
    fn perfect_speedup_for_divisible_work() {
        // 64 unit tasks on 8 cores -> makespan 8; on 16 cores -> 4.
        let mut e8 = exec(8);
        for _ in 0..64 {
            e8.run_task(0.0, 1.0);
        }
        let mut e16 = exec(16);
        for _ in 0..64 {
            e16.run_task(0.0, 1.0);
        }
        assert_eq!(e8.report().makespan_s, 8.0);
        assert_eq!(e16.report().makespan_s, 4.0);
    }

    #[test]
    fn pinned_tasks_serialize_on_their_core() {
        let mut e = exec(2);
        let a = e.run_task_on(0, 0.0, 1.0);
        let b = e.run_task_on(0, 0.0, 1.0);
        assert_eq!(a.end, 1.0);
        assert_eq!(b.start, 1.0);
        assert_eq!(e.core_free_at(1), 0.0);
    }

    #[test]
    fn makespan_monotone() {
        let mut e = exec(2);
        let mut last = 0.0;
        for i in 0..20 {
            e.run_task(0.0, 0.1 * (i % 3) as f64);
            assert!(e.report().makespan_s >= last);
            last = e.report().makespan_s;
        }
    }

    #[test]
    fn trace_records_placements() {
        let mut e = exec(2);
        e.enable_trace();
        e.run_task(0.0, 1.0);
        e.run_task(0.0, 2.0);
        let t = e.trace().unwrap();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.span(), 2.0);
        assert!(t.gantt(2, 8).contains('#'));
    }

    #[test]
    fn advance_makespan_only_grows() {
        let mut e = exec(1);
        e.run_task(0.0, 2.0);
        e.advance_makespan(1.0);
        assert_eq!(e.report().makespan_s, 2.0);
        e.advance_makespan(3.0);
        assert_eq!(e.report().makespan_s, 3.0);
    }
}
