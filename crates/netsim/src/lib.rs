//! Virtual-time cluster simulator.
//!
//! The paper's experiments ran on XSEDE Comet and Wrangler with up to 256
//! cores. We reproduce their *scaling shapes* on a laptop by splitting
//! "running a task" into two concerns:
//!
//! 1. **Real execution** — task closures genuinely run on the host and are
//!    timed ([`clock::measure`]); every analysis result is real.
//! 2. **Simulated placement** — measured durations are placed onto
//!    simulated per-core timelines ([`SimExecutor`]) according to each
//!    framework's scheduling semantics, and communication (broadcast,
//!    shuffle, staging) advances virtual time through a [`NetworkModel`].
//!
//! The simulated makespan is what the experiment harness reports; it scales
//! cleanly to 256 virtual cores regardless of host core count.

pub mod broadcast;
pub mod chaos;
pub mod chrome;
pub mod clock;
pub mod cluster;
pub mod critical;
pub mod executor;
pub mod fault;
pub mod metrics;
pub mod parallel;
pub mod policy;
pub mod report;
pub mod stream;
pub mod trace;

pub use broadcast::{broadcast_time, BroadcastAlgo};
pub use chaos::{ChaosConfig, ChaosOutcome, Fingerprint, FuzzReport, Violation};
pub use clock::{deterministic_timing, measure, measure_scaled, set_deterministic_timing};
pub use cluster::{comet, laptop, wrangler, Cluster, ClusterBuilder, MachineProfile, NetworkModel};
pub use critical::{CpSegment, CriticalPath};
pub use executor::{SimExecutor, TaskAttempt, TaskOpts, TaskPlacement};
pub use fault::{FaultPlan, FaultPlanError, MemSet, MemShrink, NodeDeath, Straggler};
pub use metrics::{Histogram, Metrics, NodeMemory, NodeTraffic, PhaseShare};
pub use parallel::Threads;
pub use policy::{PolicyError, RetryPolicy, BACKOFF_SATURATION_S};
pub use report::{Phase, SimReport};
pub use stream::{
    check_stream_invariants, run_stream, DispatchMode, LateDisposition, LateRecord, SourceLog,
    StreamError, StreamEvent, StreamJob, StreamOutput, StreamRun, StreamSpec, WindowResult,
    WindowSpec,
};
pub use trace::{EventKind, Interner, Sym, Trace, TraceEvent};
