//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] scripts the failures a simulated run must survive:
//! nodes dying at a virtual time, cores running slow (stragglers), and
//! shuffle fetches lost on the wire. The plan is attached to a
//! [`Cluster`](crate::Cluster) and consulted by
//! [`SimExecutor`](crate::SimExecutor) at placement time, so every engine
//! sees the same failure script without any engine-API changes — each
//! engine then applies its own recovery semantics (lineage recompute,
//! rescheduling, DB re-enqueue, or whole-job abort).
//!
//! Everything is deterministic: deaths and slowdowns are explicit, and
//! lost fetches are decided by a seeded hash of `(map, reduce, attempt)`,
//! so two runs with the same plan observe identical failures.

/// A node that disappears at a virtual time: every core it hosts kills its
/// running task at `at_s` and accepts no further placements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeDeath {
    pub node: usize,
    pub at_s: f64,
}

/// A persistently slow core: task durations on it are multiplied by
/// `factor` (≥ 1) — the straggler pattern PMDA reports dominating variance
/// at scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    pub core: usize,
    pub factor: f64,
}

/// A scripted set of failures for one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    deaths: Vec<NodeDeath>,
    stragglers: Vec<Straggler>,
    lost_fetch_prob: f64,
    seed: u64,
}

impl FaultPlan {
    /// The empty plan: no failures (what `Cluster`s carry by default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if this plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.deaths.is_empty() && self.stragglers.is_empty() && self.lost_fetch_prob <= 0.0
    }

    /// Kill `node` (all its cores) at virtual time `at_s`.
    pub fn kill_node(mut self, node: usize, at_s: f64) -> Self {
        assert!(at_s >= 0.0, "death time must be non-negative");
        self.deaths.push(NodeDeath { node, at_s });
        self
    }

    /// Slow every task on `core` by `factor` (≥ 1).
    pub fn slow_core(mut self, core: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor must be >= 1");
        self.stragglers.push(Straggler { core, factor });
        self
    }

    /// Make each shuffle fetch attempt fail independently with probability
    /// `prob`, decided deterministically from `seed`.
    pub fn lose_fetches(mut self, prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.lost_fetch_prob = prob;
        self.seed = seed;
        self
    }

    /// Earliest death time of `node`, if the plan kills it.
    pub fn node_death(&self, node: usize) -> Option<f64> {
        self.deaths
            .iter()
            .filter(|d| d.node == node)
            .map(|d| d.at_s)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Duration multiplier for tasks on `core` (1.0 if not a straggler;
    /// factors compose multiplicatively if listed twice).
    pub fn slowdown(&self, core: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.core == core)
            .map(|s| s.factor)
            .product()
    }

    /// Whether the `attempt`-th fetch of map output `map_part` by reducer
    /// `reduce_part` is lost. Deterministic in the plan's seed.
    pub fn fetch_lost(&self, map_part: usize, reduce_part: usize, attempt: usize) -> bool {
        if self.lost_fetch_prob <= 0.0 {
            return false;
        }
        let key = mix(self.seed)
            ^ mix(map_part as u64)
            ^ mix((reduce_part as u64) << 20)
            ^ mix((attempt as u64) << 40);
        let u = (mix(key) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.lost_fetch_prob
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.node_death(0), None);
        assert_eq!(p.slowdown(3), 1.0);
        assert!(!p.fetch_lost(0, 0, 0));
    }

    #[test]
    fn builders_accumulate() {
        let p = FaultPlan::none()
            .kill_node(1, 5.0)
            .kill_node(1, 3.0)
            .slow_core(2, 4.0)
            .slow_core(2, 2.0);
        assert!(!p.is_empty());
        assert_eq!(p.node_death(1), Some(3.0), "earliest death wins");
        assert_eq!(p.node_death(0), None);
        assert_eq!(p.slowdown(2), 8.0, "factors compose");
        assert_eq!(p.slowdown(0), 1.0);
    }

    #[test]
    fn lost_fetches_are_deterministic_and_roughly_calibrated() {
        let p = FaultPlan::none().lose_fetches(0.25, 42);
        let q = FaultPlan::none().lose_fetches(0.25, 42);
        let mut lost = 0;
        let n = 4000;
        for i in 0..n {
            let a = p.fetch_lost(i, i / 7, 0);
            assert_eq!(a, q.fetch_lost(i, i / 7, 0), "same seed, same outcome");
            lost += usize::from(a);
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "loss rate {rate} far from 0.25");
        // Retry attempts are independent coin flips, not a replay.
        assert!((0..64).any(|i| p.fetch_lost(i, 0, 0) != p.fetch_lost(i, 0, 1)));
    }

    #[test]
    #[should_panic]
    fn sub_unit_straggler_rejected() {
        FaultPlan::none().slow_core(0, 0.5);
    }
}
