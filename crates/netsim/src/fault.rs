//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] scripts the failures a simulated run must survive:
//! nodes dying at a virtual time, cores running slow (stragglers), and
//! shuffle fetches lost on the wire. The plan is attached to a
//! [`Cluster`](crate::Cluster) and consulted by
//! [`SimExecutor`](crate::SimExecutor) at placement time, so every engine
//! sees the same failure script without any engine-API changes — each
//! engine then applies its own recovery semantics (lineage recompute,
//! rescheduling, DB re-enqueue, or whole-job abort).
//!
//! Everything is deterministic: deaths and slowdowns are explicit, and
//! lost fetches are decided by a seeded hash of `(map, reduce, attempt)`,
//! so two runs with the same plan observe identical failures.

/// A node that disappears at a virtual time: every core it hosts kills its
/// running task at `at_s` and accepts no further placements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeDeath {
    pub node: usize,
    pub at_s: f64,
}

/// A persistently slow core: task durations on it are multiplied by
/// `factor` (≥ 1) — the straggler pattern PMDA reports dominating variance
/// at scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    pub core: usize,
    pub factor: f64,
}

/// A node whose usable memory budget drops to `to_bytes` at virtual time
/// `at_s` — co-tenant pressure, a leaking sidecar, or an administrator
/// capping a cgroup. Engines consult the shrunk budget through
/// [`Cluster::mem_budget`](crate::Cluster::mem_budget) and must degrade
/// gracefully (spill, evict + recompute, admission-control, or a typed
/// `MemoryExhausted` error) — never panic or hang.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemShrink {
    pub node: usize,
    pub at_s: f64,
    pub to_bytes: u64,
}

/// A node whose usable memory budget is *replaced* with `to_bytes` at
/// virtual time `at_s` — unlike a [`MemShrink`], a set may raise the
/// budget back up (a co-tenant leaving, capacity returned after
/// maintenance). The latest-fired set wins; shrinks that fire after it
/// still tighten it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemSet {
    pub node: usize,
    pub at_s: f64,
    pub to_bytes: u64,
}

/// The trajectory producer pauses at virtual time `at_s` for `for_s`
/// seconds: frames it would have emitted during the pause are emitted late
/// (their *event* time — the simulation clock stamped on the frame — is
/// unchanged; only delivery shifts). An infinite `for_s` is a producer
/// *crash*: frames past the stall point are never delivered, and a
/// streaming consumer waiting on them must surface a typed
/// `StreamStalled` under its deadline instead of hanging.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProducerStall {
    pub at_s: f64,
    pub for_s: f64,
}

impl ProducerStall {
    /// True when this stall never ends — the producer crashed.
    pub fn is_crash(&self) -> bool {
        self.for_s.is_infinite()
    }
}

/// A scripted frame that is lost on the wire and never delivered (the
/// probabilistic twin is [`FaultPlan::frame_dropped`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameDrop {
    pub frame: usize,
}

/// A scripted frame whose delivery is delayed by `by_s` seconds past its
/// nominal arrival — large delays past the allowed lateness turn the frame
/// into a *late* frame the watermark machinery must classify.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameDelay {
    pub frame: usize,
    pub by_s: f64,
}

/// A scripted network partition: between `from_s` (inclusive) and `to_s`
/// (exclusive, the *heal* time) nodes listed in different groups cannot
/// exchange messages — no fetches, no heartbeats, no collectives. Nodes
/// not listed in any group form one implicit extra group of their own.
///
/// A partitioned node is *alive*: tasks already running on it keep
/// computing in virtual time. Only communication across the cut fails,
/// which is exactly what lets a suspicion-based failure detector
/// false-positive and create zombie attempts.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    pub groups: Vec<Vec<usize>>,
    pub from_s: f64,
    pub to_s: f64,
}

impl Partition {
    /// Which side of this partition `node` is on: `Some(i)` for an
    /// explicitly listed group, `None` for the implicit remainder group.
    pub fn group_of(&self, node: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&node))
    }

    /// True while this partition is in effect at `at_s` (half-open
    /// window: cut at `from_s`, healed at `to_s`).
    pub fn active_at(&self, at_s: f64) -> bool {
        self.from_s <= at_s && at_s < self.to_s
    }

    /// True if this partition separates `a` and `b` while active.
    pub fn separates(&self, a: usize, b: usize) -> bool {
        a != b && self.group_of(a) != self.group_of(b)
    }

    /// Every node this partition explicitly lists.
    pub fn listed_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.groups.iter().flatten().copied()
    }
}

/// Degraded (but not cut) connectivity between nodes `a` and `b` during
/// `[from_s, to_s)`: transfer latency is inflated by `latency_factor`
/// (≥ 1) and each message is independently lost with `loss_prob`
/// (re-sent by the transport, costing another round). The link is
/// symmetric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkDegrade {
    pub a: usize,
    pub b: usize,
    pub latency_factor: f64,
    pub loss_prob: f64,
    pub from_s: f64,
    pub to_s: f64,
}

impl LinkDegrade {
    /// True while this degradation is in effect at `at_s`.
    pub fn active_at(&self, at_s: f64) -> bool {
        self.from_s <= at_s && at_s < self.to_s
    }

    /// True if this degradation covers the (unordered) link `x`–`y`.
    pub fn covers(&self, x: usize, y: usize) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

/// Why a serialized or assembled [`FaultPlan`] was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlanError {
    /// The JSON text could not be parsed against the plan schema.
    Parse(String),
    /// A death, shrink, or straggler is scheduled at a negative time.
    NegativeTime { what: &'static str, at_s: f64 },
    /// A straggler factor below 1 (that would be a speedup).
    SubUnitFactor { core: usize, factor: f64 },
    /// A probability outside `[0, 1]`.
    InvalidProbability { prob: f64 },
    /// The same node is killed more than once — ambiguous at best,
    /// usually a generator bug.
    DuplicateDeath { node: usize },
    /// A node id at or beyond the cluster's node count.
    NodeOutOfRange {
        what: &'static str,
        node: usize,
        nodes: usize,
    },
    /// A core id at or beyond the cluster's core count.
    CoreOutOfRange { core: usize, cores: usize },
    /// A JSON key the schema does not know, at the plan level or inside a
    /// nested record. Rejected loudly (not skipped) so a plan written by a
    /// newer serializer — e.g. one carrying stream faults — can never be
    /// silently mis-read as a weaker plan by an older reader.
    UnknownField { context: &'static str, key: String },
    /// A partition or link-degrade window that heals at or before its cut
    /// (`to_s <= from_s`): the fault would never be in effect, which is
    /// always a generator or serialization bug.
    HealBeforeCut {
        what: &'static str,
        from_s: f64,
        to_s: f64,
    },
    /// The same node appears on two sides of concurrently active
    /// partitions (two groups of one partition, or two partitions whose
    /// windows overlap in time). Reachability would be ambiguous.
    OverlappingPartition { node: usize },
    /// A link latency factor below 1 (that would be a speedup).
    SubUnitLinkFactor { a: usize, b: usize, factor: f64 },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::Parse(msg) => write!(f, "malformed fault plan: {msg}"),
            FaultPlanError::NegativeTime { what, at_s } => {
                write!(f, "negative {what} time {at_s}")
            }
            FaultPlanError::SubUnitFactor { core, factor } => {
                write!(f, "straggler factor {factor} on core {core} is below 1")
            }
            FaultPlanError::InvalidProbability { prob } => {
                write!(f, "probability {prob} outside [0, 1]")
            }
            FaultPlanError::DuplicateDeath { node } => {
                write!(f, "node {node} is killed more than once")
            }
            FaultPlanError::NodeOutOfRange { what, node, nodes } => {
                write!(f, "{what} node {node} out of range for {nodes} nodes")
            }
            FaultPlanError::CoreOutOfRange { core, cores } => {
                write!(f, "straggler core {core} out of range for {cores} cores")
            }
            FaultPlanError::UnknownField { context, key } => {
                write!(f, "unknown {context} key {key:?}")
            }
            FaultPlanError::HealBeforeCut { what, from_s, to_s } => {
                write!(f, "{what} heals at {to_s} at or before its {from_s} cut")
            }
            FaultPlanError::OverlappingPartition { node } => {
                write!(f, "node {node} is in overlapping partition groups")
            }
            FaultPlanError::SubUnitLinkFactor { a, b, factor } => {
                write!(f, "link {a}-{b} latency factor {factor} is below 1")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Scanner-level grammar failures surface as [`FaultPlanError::Parse`].
impl From<String> for FaultPlanError {
    fn from(msg: String) -> Self {
        FaultPlanError::Parse(msg)
    }
}

impl From<&str> for FaultPlanError {
    fn from(msg: &str) -> Self {
        FaultPlanError::Parse(msg.to_string())
    }
}

/// A scripted set of failures for one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    deaths: Vec<NodeDeath>,
    stragglers: Vec<Straggler>,
    mem_shrinks: Vec<MemShrink>,
    mem_sets: Vec<MemSet>,
    producer_stalls: Vec<ProducerStall>,
    frame_drops: Vec<FrameDrop>,
    frame_delays: Vec<FrameDelay>,
    partitions: Vec<Partition>,
    link_degrades: Vec<LinkDegrade>,
    lost_fetch_prob: f64,
    frame_drop_prob: f64,
    frame_dup_prob: f64,
    seed: u64,
}

impl FaultPlan {
    /// The empty plan: no failures (what `Cluster`s carry by default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if this plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.deaths.is_empty()
            && self.stragglers.is_empty()
            && self.mem_shrinks.is_empty()
            && self.mem_sets.is_empty()
            && self.producer_stalls.is_empty()
            && self.frame_drops.is_empty()
            && self.frame_delays.is_empty()
            && self.partitions.is_empty()
            && self.link_degrades.is_empty()
            && self.lost_fetch_prob <= 0.0
            && self.frame_drop_prob <= 0.0
            && self.frame_dup_prob <= 0.0
    }

    /// Kill `node` (all its cores) at virtual time `at_s`.
    pub fn kill_node(mut self, node: usize, at_s: f64) -> Self {
        assert!(at_s >= 0.0, "death time must be non-negative");
        self.deaths.push(NodeDeath { node, at_s });
        self
    }

    /// Slow every task on `core` by `factor` (≥ 1).
    pub fn slow_core(mut self, core: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor must be >= 1");
        self.stragglers.push(Straggler { core, factor });
        self
    }

    /// Shrink `node`'s memory budget to `to_bytes` at virtual time `at_s`.
    /// Multiple shrinks on one node compose: the smallest budget in effect
    /// wins (budgets only ever tighten).
    pub fn shrink_memory(mut self, node: usize, at_s: f64, to_bytes: u64) -> Self {
        assert!(at_s >= 0.0, "shrink time must be non-negative");
        self.mem_shrinks.push(MemShrink {
            node,
            at_s,
            to_bytes,
        });
        self
    }

    /// Replace `node`'s memory budget with `to_bytes` at virtual time
    /// `at_s`. Unlike [`Self::shrink_memory`] a set may *raise* the budget
    /// (a co-tenant leaving, capacity returned after maintenance), which
    /// admission control can wait for. The latest-fired set wins; shrinks
    /// firing at or after the winning set still tighten it.
    pub fn set_memory(mut self, node: usize, at_s: f64, to_bytes: u64) -> Self {
        assert!(at_s >= 0.0, "set time must be non-negative");
        self.mem_sets.push(MemSet {
            node,
            at_s,
            to_bytes,
        });
        self
    }

    /// Make each shuffle fetch attempt fail independently with probability
    /// `prob`, decided deterministically from `seed`.
    pub fn lose_fetches(mut self, prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.lost_fetch_prob = prob;
        self.seed = seed;
        self
    }

    /// Set the seed deciding probabilistic faults (lost fetches, frame
    /// drops, frame duplicates) without touching any probability.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pause the trajectory producer at virtual time `at_s` for `for_s`
    /// seconds. Frames due during the pause are delivered late; their
    /// event-time stamps are unchanged.
    pub fn stall_producer(mut self, at_s: f64, for_s: f64) -> Self {
        assert!(at_s >= 0.0, "stall time must be non-negative");
        assert!(for_s > 0.0, "stall length must be positive");
        self.producer_stalls.push(ProducerStall { at_s, for_s });
        self
    }

    /// Crash the trajectory producer at virtual time `at_s`: frames not
    /// yet emitted are never delivered (an infinite [`ProducerStall`]).
    pub fn crash_producer(mut self, at_s: f64) -> Self {
        assert!(at_s >= 0.0, "crash time must be non-negative");
        self.producer_stalls.push(ProducerStall {
            at_s,
            for_s: f64::INFINITY,
        });
        self
    }

    /// Lose the delivery of one scripted frame outright.
    pub fn drop_frame(mut self, frame: usize) -> Self {
        self.frame_drops.push(FrameDrop { frame });
        self
    }

    /// Delay the delivery of one scripted frame by `by_s` seconds past its
    /// nominal arrival. Multiple delays on one frame accumulate.
    pub fn delay_frame(mut self, frame: usize, by_s: f64) -> Self {
        assert!(by_s >= 0.0, "frame delay must be non-negative");
        self.frame_delays.push(FrameDelay { frame, by_s });
        self
    }

    /// Cut the network between `groups` of nodes from `from_s` until the
    /// partition *heals* at `to_s`. Nodes in different groups (or not
    /// listed at all — the implicit remainder group) cannot exchange any
    /// message while the cut is in effect; tasks already running on a
    /// partitioned node keep computing. Overlap with other partitions of
    /// the same node is rejected by [`Self::from_json`]; builders trust
    /// the caller.
    pub fn partition(mut self, groups: Vec<Vec<usize>>, from_s: f64, to_s: f64) -> Self {
        assert!(from_s >= 0.0, "partition cut time must be non-negative");
        assert!(to_s > from_s, "partition must heal after its cut");
        self.partitions.push(Partition {
            groups,
            from_s,
            to_s,
        });
        self
    }

    /// Degrade the link between `a` and `b` during `[from_s, to_s)`:
    /// latency inflated by `latency_factor` (≥ 1), each message lost with
    /// `loss_prob` (decided by the plan seed) and re-sent.
    pub fn degrade_link(
        mut self,
        a: usize,
        b: usize,
        latency_factor: f64,
        loss_prob: f64,
        from_s: f64,
        to_s: f64,
    ) -> Self {
        assert!(latency_factor >= 1.0, "link latency factor must be >= 1");
        assert!(
            (0.0..=1.0).contains(&loss_prob),
            "probability must be in [0, 1]"
        );
        assert!(from_s >= 0.0, "degrade time must be non-negative");
        assert!(to_s > from_s, "degrade must end after it starts");
        self.link_degrades.push(LinkDegrade {
            a,
            b,
            latency_factor,
            loss_prob,
            from_s,
            to_s,
        });
        self
    }

    /// Drop each streamed frame independently with probability `prob`,
    /// decided deterministically from the plan seed (set it with
    /// [`Self::seeded`] or [`Self::lose_fetches`]).
    pub fn drop_frames(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.frame_drop_prob = prob;
        self
    }

    /// Deliver each streamed frame a second time with probability `prob`
    /// (duplicate delivery — at-least-once transports do this), decided
    /// deterministically from the plan seed.
    pub fn duplicate_frames(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.frame_dup_prob = prob;
        self
    }

    /// Earliest death time of `node`, if the plan kills it.
    pub fn node_death(&self, node: usize) -> Option<f64> {
        self.deaths
            .iter()
            .filter(|d| d.node == node)
            .map(|d| d.at_s)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Duration multiplier for tasks on `core` (1.0 if not a straggler;
    /// factors compose multiplicatively if listed twice).
    pub fn slowdown(&self, core: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.core == core)
            .map(|s| s.factor)
            .product()
    }

    /// The scripted node deaths, in insertion order.
    pub fn deaths(&self) -> &[NodeDeath] {
        &self.deaths
    }

    /// The scripted straggler cores, in insertion order.
    pub fn stragglers(&self) -> &[Straggler] {
        &self.stragglers
    }

    /// The scripted memory shrinks, in insertion order.
    pub fn mem_shrinks(&self) -> &[MemShrink] {
        &self.mem_shrinks
    }

    /// The scripted memory sets, in insertion order.
    pub fn mem_sets(&self) -> &[MemSet] {
        &self.mem_sets
    }

    /// The scripted producer stalls, in insertion order.
    pub fn producer_stalls(&self) -> &[ProducerStall] {
        &self.producer_stalls
    }

    /// The scripted frame drops, in insertion order.
    pub fn frame_drops(&self) -> &[FrameDrop] {
        &self.frame_drops
    }

    /// The scripted frame delays, in insertion order.
    pub fn frame_delays(&self) -> &[FrameDelay] {
        &self.frame_delays
    }

    /// The scripted network partitions, in insertion order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The scripted link degradations, in insertion order.
    pub fn link_degrades(&self) -> &[LinkDegrade] {
        &self.link_degrades
    }

    /// Fast gate for the partition-aware placement path: plans without
    /// partitions keep the tournament-tree pick and the exact legacy
    /// schedule, bit for bit.
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// Can `a` and `b` exchange a message at `at_s`? False while any
    /// active partition separates them. A node can always reach itself.
    pub fn can_reach(&self, a: usize, b: usize, at_s: f64) -> bool {
        a == b
            || !self
                .partitions
                .iter()
                .any(|p| p.active_at(at_s) && p.separates(a, b))
    }

    /// The partition window separating `a` and `b` at `at_s`, if any.
    /// Plans validated against overlap have at most one.
    pub fn cut_between(&self, a: usize, b: usize, at_s: f64) -> Option<(f64, f64)> {
        self.partitions
            .iter()
            .filter(|p| p.active_at(at_s) && p.separates(a, b))
            .map(|p| (p.from_s, p.to_s))
            .fold(None, |acc: Option<(f64, f64)>, w| {
                Some(acc.map_or(w, |a| if w.1 > a.1 { w } else { a }))
            })
    }

    /// Earliest cut separating `a` and `b` that begins strictly after
    /// `after_s`, as a `(cut_s, heal_s)` window.
    pub fn next_cut_after(&self, a: usize, b: usize, after_s: f64) -> Option<(f64, f64)> {
        self.partitions
            .iter()
            .filter(|p| p.from_s > after_s && p.separates(a, b))
            .map(|p| (p.from_s, p.to_s))
            .fold(None, |acc: Option<(f64, f64)>, w| {
                Some(acc.map_or(w, |a| if w.0 < a.0 { w } else { a }))
            })
    }

    /// Earliest time ≥ `at_s` at which `a` can reach `b`, walking
    /// through (possibly back-to-back) partition windows. Partitions are
    /// finite, so this always terminates and returns a finite time.
    pub fn earliest_reach(&self, a: usize, b: usize, at_s: f64) -> f64 {
        let mut t = at_s;
        while let Some((_, heal)) = self.cut_between(a, b, t) {
            t = heal;
        }
        t
    }

    /// Latency multiplier for a transfer on the link `a`–`b` at `at_s`
    /// (1.0 on a healthy link; concurrent degradations compose).
    pub fn link_latency_factor(&self, a: usize, b: usize, at_s: f64) -> f64 {
        self.link_degrades
            .iter()
            .filter(|d| d.active_at(at_s) && d.covers(a, b))
            .map(|d| d.latency_factor)
            .product()
    }

    /// Whether the `attempt`-th send over link `a`–`b` at `at_s` is lost
    /// to link degradation (the transport pays for it and re-sends).
    /// Deterministic in the plan's seed; the link is symmetric so the
    /// coin is too.
    pub fn link_lost(&self, a: usize, b: usize, attempt: usize, at_s: f64) -> bool {
        let prob: f64 = self
            .link_degrades
            .iter()
            .filter(|d| d.active_at(at_s) && d.covers(a, b))
            .map(|d| d.loss_prob)
            .fold(0.0, |acc, p| 1.0 - (1.0 - acc) * (1.0 - p));
        if prob <= 0.0 {
            return false;
        }
        let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
        let key = mix(self.seed ^ mix(0x1a7e_917c))
            ^ mix(lo)
            ^ mix(hi << 20)
            ^ mix((attempt as u64) << 40);
        let u = (mix(key) >> 11) as f64 / (1u64 << 53) as f64;
        u < prob
    }

    /// Earliest producer-crash time, if the plan crashes the producer.
    pub fn producer_crash(&self) -> Option<f64> {
        self.producer_stalls
            .iter()
            .filter(|s| s.is_crash())
            .map(|s| s.at_s)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Total scripted delivery delay for `frame` (0 if none).
    pub fn frame_delay(&self, frame: usize) -> f64 {
        self.frame_delays
            .iter()
            .filter(|d| d.frame == frame)
            .map(|d| d.by_s)
            .sum()
    }

    /// Memory budget cap in effect on `node` at time `at_s` (`None` if the
    /// node's memory is untouched so far). The latest-fired *set*
    /// establishes the base (sets may grow the budget back); shrinks that
    /// fired at or after that set — or all fired shrinks, when no set has
    /// fired — compose on top of it, smallest wins (shrinks only tighten).
    pub fn mem_limit(&self, node: usize, at_s: f64) -> Option<u64> {
        let latest_set = self
            .mem_sets
            .iter()
            .filter(|m| m.node == node && m.at_s <= at_s)
            .max_by(|a, b| a.at_s.total_cmp(&b.at_s));
        let since = latest_set.map(|m| m.at_s);
        let shrink = self
            .mem_shrinks
            .iter()
            .filter(|m| m.node == node && m.at_s <= at_s)
            .filter(|m| since.is_none_or(|t| m.at_s >= t))
            .map(|m| m.to_bytes)
            .min();
        match (latest_set.map(|m| m.to_bytes), shrink) {
            (Some(s), Some(k)) => Some(s.min(k)),
            (Some(s), None) => Some(s),
            (None, k) => k,
        }
    }

    /// Earliest virtual time strictly after `after_s` at which any node's
    /// memory budget changes (a shrink or a set fires). Admission control
    /// uses this to *wait* for a budget that will grow rather than refusing
    /// a unit that only fails to fit right now; `None` means the budgets
    /// are final and a refusal is forever.
    pub fn next_mem_change_after(&self, after_s: f64) -> Option<f64> {
        self.mem_shrinks
            .iter()
            .map(|m| m.at_s)
            .chain(self.mem_sets.iter().map(|m| m.at_s))
            .filter(|&t| t > after_s)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Per-fetch loss probability (0 when fetches are reliable).
    pub fn lost_fetch_prob(&self) -> f64 {
        self.lost_fetch_prob
    }

    /// Per-frame probabilistic drop probability (0 when delivery is
    /// reliable apart from scripted drops).
    pub fn frame_drop_prob(&self) -> f64 {
        self.frame_drop_prob
    }

    /// Per-frame duplicate-delivery probability.
    pub fn frame_dup_prob(&self) -> f64 {
        self.frame_dup_prob
    }

    /// Seed deciding which fetches are lost.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Assemble a plan from explicit parts — the chaos harness uses this
    /// to rebuild shrunken candidate plans. Memory *sets* are not part of
    /// the chaos generator's vocabulary, so the assembled plan carries
    /// none; add them with [`Self::set_memory`] if needed.
    pub fn from_parts(
        deaths: Vec<NodeDeath>,
        stragglers: Vec<Straggler>,
        mem_shrinks: Vec<MemShrink>,
        lost_fetch_prob: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&lost_fetch_prob),
            "probability must be in [0, 1]"
        );
        assert!(
            deaths.iter().all(|d| d.at_s >= 0.0),
            "death time must be non-negative"
        );
        assert!(
            stragglers.iter().all(|s| s.factor >= 1.0),
            "straggler factor must be >= 1"
        );
        assert!(
            mem_shrinks.iter().all(|m| m.at_s >= 0.0),
            "shrink time must be non-negative"
        );
        FaultPlan {
            deaths,
            stragglers,
            mem_shrinks,
            mem_sets: Vec::new(),
            producer_stalls: Vec::new(),
            frame_drops: Vec::new(),
            frame_delays: Vec::new(),
            partitions: Vec::new(),
            link_degrades: Vec::new(),
            lost_fetch_prob,
            frame_drop_prob: 0.0,
            frame_dup_prob: 0.0,
            seed,
        }
    }

    /// Replace the partition half of the plan wholesale — the chaos
    /// shrinker pairs this with [`Self::from_parts`] /
    /// [`Self::with_stream_parts`] to rebuild shrunken candidates that
    /// carry partitions and link degradations.
    pub fn with_partition_parts(
        mut self,
        partitions: Vec<Partition>,
        link_degrades: Vec<LinkDegrade>,
    ) -> Self {
        assert!(
            partitions
                .iter()
                .all(|p| p.from_s >= 0.0 && p.to_s > p.from_s),
            "partition windows must be non-negative and heal after the cut"
        );
        assert!(
            link_degrades.iter().all(|d| d.from_s >= 0.0
                && d.to_s > d.from_s
                && d.latency_factor >= 1.0
                && (0.0..=1.0).contains(&d.loss_prob)),
            "link degradations must have valid windows, factors and probabilities"
        );
        self.partitions = partitions;
        self.link_degrades = link_degrades;
        self
    }

    /// Replace the stream-fault half of the plan wholesale — the chaos
    /// shrinker pairs this with [`Self::from_parts`] to rebuild shrunken
    /// candidates that carry stream faults.
    pub fn with_stream_parts(
        mut self,
        producer_stalls: Vec<ProducerStall>,
        frame_drops: Vec<FrameDrop>,
        frame_delays: Vec<FrameDelay>,
        frame_drop_prob: f64,
        frame_dup_prob: f64,
    ) -> Self {
        assert!(
            producer_stalls
                .iter()
                .all(|s| s.at_s >= 0.0 && s.for_s > 0.0),
            "stall times must be non-negative and lengths positive"
        );
        assert!(
            frame_delays.iter().all(|d| d.by_s >= 0.0),
            "frame delays must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&frame_drop_prob) && (0.0..=1.0).contains(&frame_dup_prob),
            "probability must be in [0, 1]"
        );
        self.producer_stalls = producer_stalls;
        self.frame_drops = frame_drops;
        self.frame_delays = frame_delays;
        self.frame_drop_prob = frame_drop_prob;
        self.frame_dup_prob = frame_dup_prob;
        self
    }

    /// Check every node/core id against an actual cluster shape. Parsing
    /// ([`Self::from_json`]) cannot do this — the JSON carries no cluster
    /// size — so callers replaying external plans should validate before
    /// attaching them.
    pub fn validate(&self, nodes: usize, cores: usize) -> Result<(), FaultPlanError> {
        for d in &self.deaths {
            if d.node >= nodes {
                return Err(FaultPlanError::NodeOutOfRange {
                    what: "death",
                    node: d.node,
                    nodes,
                });
            }
        }
        for s in &self.stragglers {
            if s.core >= cores {
                return Err(FaultPlanError::CoreOutOfRange {
                    core: s.core,
                    cores,
                });
            }
        }
        for m in &self.mem_shrinks {
            if m.node >= nodes {
                return Err(FaultPlanError::NodeOutOfRange {
                    what: "mem_shrink",
                    node: m.node,
                    nodes,
                });
            }
        }
        for m in &self.mem_sets {
            if m.node >= nodes {
                return Err(FaultPlanError::NodeOutOfRange {
                    what: "mem_set",
                    node: m.node,
                    nodes,
                });
            }
        }
        for p in &self.partitions {
            if let Some(node) = p.listed_nodes().find(|&n| n >= nodes) {
                return Err(FaultPlanError::NodeOutOfRange {
                    what: "partition",
                    node,
                    nodes,
                });
            }
        }
        for d in &self.link_degrades {
            if let Some(node) = [d.a, d.b].into_iter().find(|&n| n >= nodes) {
                return Err(FaultPlanError::NodeOutOfRange {
                    what: "link",
                    node,
                    nodes,
                });
            }
        }
        Ok(())
    }

    /// Serialize to JSON so shrunk chaos counterexamples can be attached
    /// to CI runs and replayed. The workspace deliberately carries no
    /// serde dependency (it is built offline), so this is hand-rolled —
    /// floats use Rust's shortest round-trip formatting.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"deaths\":[");
        for (i, d) in self.deaths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"node\":{},\"at_s\":{:?}}}", d.node, d.at_s));
        }
        out.push_str("],\"stragglers\":[");
        for (i, s) in self.stragglers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"core\":{},\"factor\":{:?}}}",
                s.core, s.factor
            ));
        }
        out.push_str("],\"mem_shrinks\":[");
        for (i, m) in self.mem_shrinks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"at_s\":{:?},\"to_bytes\":{}}}",
                m.node, m.at_s, m.to_bytes
            ));
        }
        out.push_str("],\"mem_sets\":[");
        for (i, m) in self.mem_sets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"at_s\":{:?},\"to_bytes\":{}}}",
                m.node, m.at_s, m.to_bytes
            ));
        }
        out.push_str("],\"producer_stalls\":[");
        for (i, s) in self.producer_stalls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // JSON has no Infinity literal; a crash (infinite stall) is
            // encoded as the sentinel -1.0 and decoded back on parse.
            let for_s = if s.is_crash() { -1.0 } else { s.for_s };
            out.push_str(&format!("{{\"at_s\":{:?},\"for_s\":{:?}}}", s.at_s, for_s));
        }
        out.push_str("],\"frame_drops\":[");
        for (i, d) in self.frame_drops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}", d.frame));
        }
        out.push_str("],\"frame_delays\":[");
        for (i, d) in self.frame_delays.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"frame\":{},\"by_s\":{:?}}}", d.frame, d.by_s));
        }
        out.push_str("],\"partitions\":[");
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"groups\":[");
            for (gi, g) in p.groups.iter().enumerate() {
                if gi > 0 {
                    out.push(',');
                }
                out.push('[');
                for (ni, n) in g.iter().enumerate() {
                    if ni > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{n}"));
                }
                out.push(']');
            }
            out.push_str(&format!(
                "],\"from_s\":{:?},\"to_s\":{:?}}}",
                p.from_s, p.to_s
            ));
        }
        out.push_str("],\"links\":[");
        for (i, d) in self.link_degrades.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"a\":{},\"b\":{},\"latency_factor\":{:?},\"loss_prob\":{:?},\"from_s\":{:?},\"to_s\":{:?}}}",
                d.a, d.b, d.latency_factor, d.loss_prob, d.from_s, d.to_s
            ));
        }
        out.push_str(&format!(
            "],\"lost_fetch_prob\":{:?},\"frame_drop_prob\":{:?},\"frame_dup_prob\":{:?},\"seed\":{}}}",
            self.lost_fetch_prob, self.frame_drop_prob, self.frame_dup_prob, self.seed
        ));
        out
    }

    /// Parse a plan previously written by [`Self::to_json`] (whitespace
    /// and key order are flexible; unknown keys are rejected). Beyond the
    /// grammar, the plan itself is validated: negative times, sub-unit
    /// straggler factors, out-of-range probabilities and duplicate node
    /// deaths are rejected with a typed [`FaultPlanError`] instead of being
    /// silently accepted. Node/core *range* checks need a cluster shape —
    /// use [`Self::validate`] for those.
    pub fn from_json(json: &str) -> Result<FaultPlan, FaultPlanError> {
        let plan = Self::from_json_grammar(json)?;
        for prob in [
            plan.lost_fetch_prob,
            plan.frame_drop_prob,
            plan.frame_dup_prob,
        ] {
            if !(0.0..=1.0).contains(&prob) {
                return Err(FaultPlanError::InvalidProbability { prob });
            }
        }
        if let Some(d) = plan.deaths.iter().find(|d| d.at_s < 0.0) {
            return Err(FaultPlanError::NegativeTime {
                what: "death",
                at_s: d.at_s,
            });
        }
        if let Some(m) = plan.mem_shrinks.iter().find(|m| m.at_s < 0.0) {
            return Err(FaultPlanError::NegativeTime {
                what: "mem_shrink",
                at_s: m.at_s,
            });
        }
        if let Some(m) = plan.mem_sets.iter().find(|m| m.at_s < 0.0) {
            return Err(FaultPlanError::NegativeTime {
                what: "mem_set",
                at_s: m.at_s,
            });
        }
        if let Some(s) = plan.stragglers.iter().find(|s| s.factor < 1.0) {
            return Err(FaultPlanError::SubUnitFactor {
                core: s.core,
                factor: s.factor,
            });
        }
        if let Some(s) = plan.producer_stalls.iter().find(|s| s.at_s < 0.0) {
            return Err(FaultPlanError::NegativeTime {
                what: "producer_stall",
                at_s: s.at_s,
            });
        }
        if let Some(s) = plan.producer_stalls.iter().find(|s| s.for_s <= 0.0) {
            return Err(FaultPlanError::NegativeTime {
                what: "producer_stall length",
                at_s: s.for_s,
            });
        }
        if let Some(d) = plan.frame_delays.iter().find(|d| d.by_s < 0.0) {
            return Err(FaultPlanError::NegativeTime {
                what: "frame_delay",
                at_s: d.by_s,
            });
        }
        for (i, d) in plan.deaths.iter().enumerate() {
            if plan.deaths[..i].iter().any(|e| e.node == d.node) {
                return Err(FaultPlanError::DuplicateDeath { node: d.node });
            }
        }
        for p in &plan.partitions {
            if p.from_s < 0.0 {
                return Err(FaultPlanError::NegativeTime {
                    what: "partition",
                    at_s: p.from_s,
                });
            }
            if p.to_s <= p.from_s {
                return Err(FaultPlanError::HealBeforeCut {
                    what: "partition",
                    from_s: p.from_s,
                    to_s: p.to_s,
                });
            }
            // A node listed in two groups of the same partition would sit
            // on both sides of its own cut.
            for (gi, g) in p.groups.iter().enumerate() {
                for &n in g {
                    if p.groups[..gi].iter().any(|h| h.contains(&n))
                        || g.iter().filter(|&&m| m == n).count() > 1
                    {
                        return Err(FaultPlanError::OverlappingPartition { node: n });
                    }
                }
            }
        }
        // Two partitions whose windows overlap in time must not list the
        // same node — reachability would be ambiguous.
        for (i, p) in plan.partitions.iter().enumerate() {
            for q in &plan.partitions[..i] {
                if p.from_s < q.to_s && q.from_s < p.to_s {
                    if let Some(n) = p.listed_nodes().find(|&n| q.listed_nodes().any(|m| m == n)) {
                        return Err(FaultPlanError::OverlappingPartition { node: n });
                    }
                }
            }
        }
        for d in &plan.link_degrades {
            if d.from_s < 0.0 {
                return Err(FaultPlanError::NegativeTime {
                    what: "link",
                    at_s: d.from_s,
                });
            }
            if d.to_s <= d.from_s {
                return Err(FaultPlanError::HealBeforeCut {
                    what: "link",
                    from_s: d.from_s,
                    to_s: d.to_s,
                });
            }
            if d.latency_factor < 1.0 {
                return Err(FaultPlanError::SubUnitLinkFactor {
                    a: d.a,
                    b: d.b,
                    factor: d.latency_factor,
                });
            }
            if !(0.0..=1.0).contains(&d.loss_prob) {
                return Err(FaultPlanError::InvalidProbability { prob: d.loss_prob });
            }
        }
        Ok(plan)
    }

    /// The grammar half of [`Self::from_json`]: structure only, no
    /// semantic validation. Unknown keys — at the plan level or inside any
    /// nested record — surface as [`FaultPlanError::UnknownField`] so newer
    /// plans fail loudly in older readers.
    fn from_json_grammar(json: &str) -> Result<FaultPlan, FaultPlanError> {
        fn unknown(context: &'static str, key: &str) -> FaultPlanError {
            FaultPlanError::UnknownField {
                context,
                key: key.to_string(),
            }
        }
        let mut p = JsonScanner::new(json);
        let mut deaths = Vec::new();
        let mut stragglers = Vec::new();
        let mut mem_shrinks = Vec::new();
        let mut mem_sets = Vec::new();
        let mut producer_stalls = Vec::new();
        let mut frame_drops = Vec::new();
        let mut frame_delays = Vec::new();
        let mut partitions = Vec::new();
        let mut link_degrades = Vec::new();
        let mut lost_fetch_prob = 0.0;
        let mut frame_drop_prob = 0.0;
        let mut frame_dup_prob = 0.0;
        let mut seed = 0u64;
        p.expect('{')?;
        if !p.peek_is('}') {
            loop {
                let key = p.string()?;
                p.expect(':')?;
                match key.as_str() {
                    "deaths" => {
                        p.array(|p| -> Result<(), FaultPlanError> {
                            let (mut node, mut at_s) = (None, None);
                            p.object(|k, v| -> Result<(), FaultPlanError> {
                                match k {
                                    "node" => node = Some(v as usize),
                                    "at_s" => at_s = Some(v),
                                    other => return Err(unknown("death", other)),
                                }
                                Ok(())
                            })?;
                            deaths.push(NodeDeath {
                                node: node.ok_or("death missing \"node\"")?,
                                at_s: at_s.ok_or("death missing \"at_s\"")?,
                            });
                            Ok(())
                        })?;
                    }
                    "stragglers" => {
                        p.array(|p| -> Result<(), FaultPlanError> {
                            let (mut core, mut factor) = (None, None);
                            p.object(|k, v| -> Result<(), FaultPlanError> {
                                match k {
                                    "core" => core = Some(v as usize),
                                    "factor" => factor = Some(v),
                                    other => return Err(unknown("straggler", other)),
                                }
                                Ok(())
                            })?;
                            stragglers.push(Straggler {
                                core: core.ok_or("straggler missing \"core\"")?,
                                factor: factor.ok_or("straggler missing \"factor\"")?,
                            });
                            Ok(())
                        })?;
                    }
                    "mem_shrinks" => {
                        p.array(|p| -> Result<(), FaultPlanError> {
                            let (mut node, mut at_s, mut to_bytes) = (None, None, None);
                            p.object(|k, v| -> Result<(), FaultPlanError> {
                                match k {
                                    "node" => node = Some(v as usize),
                                    "at_s" => at_s = Some(v),
                                    // Budgets are well below 2^53 bytes, so
                                    // the f64 path is exact.
                                    "to_bytes" => to_bytes = Some(v as u64),
                                    other => return Err(unknown("mem_shrink", other)),
                                }
                                Ok(())
                            })?;
                            mem_shrinks.push(MemShrink {
                                node: node.ok_or("mem_shrink missing \"node\"")?,
                                at_s: at_s.ok_or("mem_shrink missing \"at_s\"")?,
                                to_bytes: to_bytes.ok_or("mem_shrink missing \"to_bytes\"")?,
                            });
                            Ok(())
                        })?;
                    }
                    "mem_sets" => {
                        p.array(|p| -> Result<(), FaultPlanError> {
                            let (mut node, mut at_s, mut to_bytes) = (None, None, None);
                            p.object(|k, v| -> Result<(), FaultPlanError> {
                                match k {
                                    "node" => node = Some(v as usize),
                                    "at_s" => at_s = Some(v),
                                    "to_bytes" => to_bytes = Some(v as u64),
                                    other => return Err(unknown("mem_set", other)),
                                }
                                Ok(())
                            })?;
                            mem_sets.push(MemSet {
                                node: node.ok_or("mem_set missing \"node\"")?,
                                at_s: at_s.ok_or("mem_set missing \"at_s\"")?,
                                to_bytes: to_bytes.ok_or("mem_set missing \"to_bytes\"")?,
                            });
                            Ok(())
                        })?;
                    }
                    "producer_stalls" => {
                        p.array(|p| -> Result<(), FaultPlanError> {
                            let (mut at_s, mut for_s) = (None, None);
                            p.object(|k, v| -> Result<(), FaultPlanError> {
                                match k {
                                    "at_s" => at_s = Some(v),
                                    // -1.0 is the serialized sentinel for an
                                    // infinite stall (a producer crash).
                                    "for_s" => {
                                        for_s = Some(if v < 0.0 { f64::INFINITY } else { v })
                                    }
                                    other => return Err(unknown("producer_stall", other)),
                                }
                                Ok(())
                            })?;
                            producer_stalls.push(ProducerStall {
                                at_s: at_s.ok_or("producer_stall missing \"at_s\"")?,
                                for_s: for_s.ok_or("producer_stall missing \"for_s\"")?,
                            });
                            Ok(())
                        })?;
                    }
                    "frame_drops" => {
                        p.array(|p| -> Result<(), FaultPlanError> {
                            frame_drops.push(FrameDrop {
                                frame: p.integer()? as usize,
                            });
                            Ok(())
                        })?;
                    }
                    "frame_delays" => {
                        p.array(|p| -> Result<(), FaultPlanError> {
                            let (mut frame, mut by_s) = (None, None);
                            p.object(|k, v| -> Result<(), FaultPlanError> {
                                match k {
                                    "frame" => frame = Some(v as usize),
                                    "by_s" => by_s = Some(v),
                                    other => return Err(unknown("frame_delay", other)),
                                }
                                Ok(())
                            })?;
                            frame_delays.push(FrameDelay {
                                frame: frame.ok_or("frame_delay missing \"frame\"")?,
                                by_s: by_s.ok_or("frame_delay missing \"by_s\"")?,
                            });
                            Ok(())
                        })?;
                    }
                    // Partition records nest an array-of-arrays under
                    // "groups", which the flat-number `object()` helper
                    // cannot express — parsed by hand.
                    "partitions" => {
                        p.array(|p| -> Result<(), FaultPlanError> {
                            let mut groups: Option<Vec<Vec<usize>>> = None;
                            let (mut from_s, mut to_s) = (None, None);
                            p.expect('{')?;
                            if p.peek_is('}') {
                                p.expect('}')?;
                            } else {
                                loop {
                                    let key = p.string()?;
                                    p.expect(':')?;
                                    match key.as_str() {
                                        "groups" => {
                                            let mut gs: Vec<Vec<usize>> = Vec::new();
                                            p.array(|p| -> Result<(), FaultPlanError> {
                                                let mut g = Vec::new();
                                                p.array(|p| -> Result<(), FaultPlanError> {
                                                    g.push(p.integer()? as usize);
                                                    Ok(())
                                                })?;
                                                gs.push(g);
                                                Ok(())
                                            })?;
                                            groups = Some(gs);
                                        }
                                        "from_s" => from_s = Some(p.number()?),
                                        "to_s" => to_s = Some(p.number()?),
                                        other => return Err(unknown("partition", other)),
                                    }
                                    if !p.comma_or_close('}')? {
                                        break;
                                    }
                                }
                            }
                            partitions.push(Partition {
                                groups: groups.ok_or("partition missing \"groups\"")?,
                                from_s: from_s.ok_or("partition missing \"from_s\"")?,
                                to_s: to_s.ok_or("partition missing \"to_s\"")?,
                            });
                            Ok(())
                        })?;
                    }
                    "links" => {
                        p.array(|p| -> Result<(), FaultPlanError> {
                            let (mut a, mut b) = (None, None);
                            let (mut latency_factor, mut loss_prob) = (None, None);
                            let (mut from_s, mut to_s) = (None, None);
                            p.object(|k, v| -> Result<(), FaultPlanError> {
                                match k {
                                    "a" => a = Some(v as usize),
                                    "b" => b = Some(v as usize),
                                    "latency_factor" => latency_factor = Some(v),
                                    "loss_prob" => loss_prob = Some(v),
                                    "from_s" => from_s = Some(v),
                                    "to_s" => to_s = Some(v),
                                    other => return Err(unknown("link", other)),
                                }
                                Ok(())
                            })?;
                            link_degrades.push(LinkDegrade {
                                a: a.ok_or("link missing \"a\"")?,
                                b: b.ok_or("link missing \"b\"")?,
                                latency_factor: latency_factor
                                    .ok_or("link missing \"latency_factor\"")?,
                                loss_prob: loss_prob.ok_or("link missing \"loss_prob\"")?,
                                from_s: from_s.ok_or("link missing \"from_s\"")?,
                                to_s: to_s.ok_or("link missing \"to_s\"")?,
                            });
                            Ok(())
                        })?;
                    }
                    "lost_fetch_prob" => lost_fetch_prob = p.number()?,
                    "frame_drop_prob" => frame_drop_prob = p.number()?,
                    "frame_dup_prob" => frame_dup_prob = p.number()?,
                    "seed" => seed = p.integer()?,
                    other => return Err(unknown("plan", other)),
                }
                if !p.comma_or_close('}')? {
                    break;
                }
            }
        } else {
            p.expect('}')?;
        }
        p.end()?;
        Ok(FaultPlan {
            deaths,
            stragglers,
            mem_shrinks,
            mem_sets,
            producer_stalls,
            frame_drops,
            frame_delays,
            partitions,
            link_degrades,
            lost_fetch_prob,
            frame_drop_prob,
            frame_dup_prob,
            seed,
        })
    }

    /// Whether the `attempt`-th fetch of map output `map_part` by reducer
    /// `reduce_part` is lost. Deterministic in the plan's seed.
    pub fn fetch_lost(&self, map_part: usize, reduce_part: usize, attempt: usize) -> bool {
        if self.lost_fetch_prob <= 0.0 {
            return false;
        }
        let key = mix(self.seed)
            ^ mix(map_part as u64)
            ^ mix((reduce_part as u64) << 20)
            ^ mix((attempt as u64) << 40);
        let u = (mix(key) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.lost_fetch_prob
    }

    /// Whether streamed frame `frame` is probabilistically lost in
    /// transit. Deterministic in the plan's seed; independent of
    /// [`Self::fetch_lost`] and [`Self::frame_duplicated`] by salting.
    pub fn frame_dropped(&self, frame: usize) -> bool {
        self.frame_coin(frame, 0x5ead_f0a1, self.frame_drop_prob)
    }

    /// Whether streamed frame `frame` is delivered a second time.
    /// Deterministic in the plan's seed.
    pub fn frame_duplicated(&self, frame: usize) -> bool {
        self.frame_coin(frame, 0xd0b1_e77e, self.frame_dup_prob)
    }

    /// Deterministic per-frame transit jitter in `[0, max_s)`, seeded like
    /// the frame coins (and salted independently of them).
    pub fn frame_jitter(&self, frame: usize, max_s: f64) -> f64 {
        if max_s <= 0.0 {
            return 0.0;
        }
        let key = mix(self.seed ^ mix(0x717e_4a2b)) ^ mix(frame as u64);
        let u = (mix(key) >> 11) as f64 / (1u64 << 53) as f64;
        u * max_s
    }

    fn frame_coin(&self, frame: usize, salt: u64, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        let key = mix(self.seed ^ mix(salt)) ^ mix(frame as u64);
        let u = (mix(key) >> 11) as f64 / (1u64 << 53) as f64;
        u < prob
    }
}

/// Minimal JSON scanner for the fixed [`FaultPlan`] schema: objects of
/// string keys, arrays, flat number-valued objects, and numbers. Enough to
/// replay a plan; not a general JSON parser.
struct JsonScanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonScanner<'a> {
    fn new(s: &'a str) -> Self {
        JsonScanner {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&(c as u8))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                return Err("escape sequences are not supported".into());
            }
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    /// Parse a non-negative integer exactly (u64 seeds exceed f64's 53-bit
    /// mantissa, so they must not round-trip through a float).
    fn integer(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad integer at byte {start}"))
    }

    /// `true` if a comma was consumed (more elements follow); `false` if
    /// the closing delimiter was.
    fn comma_or_close(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&b) if b == close as u8 => {
                self.pos += 1;
                Ok(false)
            }
            _ => Err(format!("expected ',' or {close:?} at byte {}", self.pos)),
        }
    }

    /// Error type is generic so element callbacks can surface typed
    /// [`FaultPlanError`]s (e.g. unknown keys) while the scanner's own
    /// grammar failures convert in via `From<String>`.
    fn array<E: From<String>>(
        &mut self,
        mut elem: impl FnMut(&mut Self) -> Result<(), E>,
    ) -> Result<(), E> {
        self.expect('[').map_err(E::from)?;
        if self.peek_is(']') {
            return self.expect(']').map_err(E::from);
        }
        loop {
            elem(self)?;
            if !self.comma_or_close(']').map_err(E::from)? {
                return Ok(());
            }
        }
    }

    /// Parse a flat object whose values are all numbers, feeding each
    /// `(key, value)` pair to `field`.
    fn object<E: From<String>>(
        &mut self,
        mut field: impl FnMut(&str, f64) -> Result<(), E>,
    ) -> Result<(), E> {
        self.expect('{').map_err(E::from)?;
        if self.peek_is('}') {
            return self.expect('}').map_err(E::from);
        }
        loop {
            let key = self.string().map_err(E::from)?;
            self.expect(':').map_err(E::from)?;
            let value = self.number().map_err(E::from)?;
            field(&key, value)?;
            if !self.comma_or_close('}').map_err(E::from)? {
                return Ok(());
            }
        }
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing input at byte {}", self.pos))
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.node_death(0), None);
        assert_eq!(p.slowdown(3), 1.0);
        assert!(!p.fetch_lost(0, 0, 0));
    }

    #[test]
    fn builders_accumulate() {
        let p = FaultPlan::none()
            .kill_node(1, 5.0)
            .kill_node(1, 3.0)
            .slow_core(2, 4.0)
            .slow_core(2, 2.0);
        assert!(!p.is_empty());
        assert_eq!(p.node_death(1), Some(3.0), "earliest death wins");
        assert_eq!(p.node_death(0), None);
        assert_eq!(p.slowdown(2), 8.0, "factors compose");
        assert_eq!(p.slowdown(0), 1.0);
    }

    #[test]
    fn lost_fetches_are_deterministic_and_roughly_calibrated() {
        let p = FaultPlan::none().lose_fetches(0.25, 42);
        let q = FaultPlan::none().lose_fetches(0.25, 42);
        let mut lost = 0;
        let n = 4000;
        for i in 0..n {
            let a = p.fetch_lost(i, i / 7, 0);
            assert_eq!(a, q.fetch_lost(i, i / 7, 0), "same seed, same outcome");
            lost += usize::from(a);
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "loss rate {rate} far from 0.25");
        // Retry attempts are independent coin flips, not a replay.
        assert!((0..64).any(|i| p.fetch_lost(i, 0, 0) != p.fetch_lost(i, 0, 1)));
    }

    #[test]
    #[should_panic]
    fn sub_unit_straggler_rejected() {
        FaultPlan::none().slow_core(0, 0.5);
    }

    // ---- JSON round-trip ----

    #[test]
    fn json_round_trips_exactly() {
        let p = FaultPlan::none()
            .kill_node(3, 1.5)
            .kill_node(0, 0.1 + 0.2) // a value with no short decimal form
            .slow_core(2, 4.75)
            .lose_fetches(0.12345678901234567, 0xdead_beef);
        let json = p.to_json();
        let q = FaultPlan::from_json(&json).unwrap();
        assert_eq!(p, q, "round-trip must be exact, bit-for-bit");
        assert_eq!(q.to_json(), json, "re-serialization is stable");
    }

    #[test]
    fn empty_plan_round_trips() {
        let p = FaultPlan::none();
        let q = FaultPlan::from_json(&p.to_json()).unwrap();
        assert!(q.is_empty());
        assert_eq!(p, q);
    }

    #[test]
    fn json_tolerates_whitespace_and_key_order() {
        let json = r#" {
            "seed": 7,
            "stragglers": [ { "factor": 2.0, "core": 1 } ],
            "lost_fetch_prob": 0.5,
            "deaths": [ { "at_s": 3.25, "node": 0 } ]
        } "#;
        let p = FaultPlan::from_json(json).unwrap();
        assert_eq!(p.seed(), 7);
        assert_eq!(p.lost_fetch_prob(), 0.5);
        assert_eq!(
            p.deaths(),
            &[NodeDeath {
                node: 0,
                at_s: 3.25
            }]
        );
        assert_eq!(
            p.stragglers(),
            &[Straggler {
                core: 1,
                factor: 2.0
            }]
        );
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(FaultPlan::from_json("").is_err());
        assert!(FaultPlan::from_json("{}").unwrap().is_empty());
        assert!(FaultPlan::from_json("{\"bogus\":1}").is_err());
        assert!(FaultPlan::from_json("{\"lost_fetch_prob\":2.0,\"seed\":0}").is_err());
        assert!(
            FaultPlan::from_json("{\"deaths\":[{\"node\":0,\"at_s\":-1.0}]}").is_err(),
            "negative death times are invalid"
        );
        assert!(
            FaultPlan::from_json("{\"seed\":1}{").is_err(),
            "trailing input"
        );
    }

    #[test]
    fn from_parts_matches_builders() {
        let built = FaultPlan::none().kill_node(1, 2.0).slow_core(0, 3.0);
        let parts = FaultPlan::from_parts(
            vec![NodeDeath { node: 1, at_s: 2.0 }],
            vec![Straggler {
                core: 0,
                factor: 3.0,
            }],
            Vec::new(),
            0.0,
            0,
        );
        assert_eq!(built, parts);
    }

    // ---- memory shrinks ----

    #[test]
    fn mem_shrinks_tighten_monotonically() {
        let p = FaultPlan::none()
            .shrink_memory(0, 2.0, 1 << 30)
            .shrink_memory(0, 5.0, 1 << 32) // later but *larger*: ignored
            .shrink_memory(1, 0.0, 1 << 20);
        assert!(!p.is_empty());
        assert_eq!(p.mem_limit(0, 1.0), None, "before the first shrink");
        assert_eq!(p.mem_limit(0, 2.0), Some(1 << 30));
        assert_eq!(p.mem_limit(0, 10.0), Some(1 << 30), "smallest budget wins");
        assert_eq!(p.mem_limit(1, 0.0), Some(1 << 20));
        assert_eq!(p.mem_limit(2, 100.0), None);
        assert_eq!(p.mem_shrinks().len(), 3);
    }

    #[test]
    fn mem_sets_can_grow_budgets_back() {
        // A set replaces the budget wholesale — later sets win, and a set
        // may *raise* the budget a shrink took away.
        let p = FaultPlan::none()
            .shrink_memory(0, 1.0, 1 << 20)
            .set_memory(0, 5.0, 1 << 30) // capacity returns at t=5
            .set_memory(0, 9.0, 1 << 28); // ...and is re-capped at t=9
        assert_eq!(p.mem_limit(0, 0.5), None, "nothing fired yet");
        assert_eq!(p.mem_limit(0, 1.0), Some(1 << 20), "shrink in effect");
        assert_eq!(
            p.mem_limit(0, 5.0),
            Some(1 << 30),
            "set overrides the shrink"
        );
        assert_eq!(p.mem_limit(0, 9.5), Some(1 << 28), "latest set wins");
        // A shrink firing after the winning set still tightens it.
        let q = FaultPlan::none()
            .set_memory(1, 2.0, 1 << 30)
            .shrink_memory(1, 4.0, 1 << 22);
        assert_eq!(q.mem_limit(1, 3.0), Some(1 << 30));
        assert_eq!(q.mem_limit(1, 4.0), Some(1 << 22), "later shrink tightens");
        assert!(!q.is_empty());
    }

    #[test]
    fn next_mem_change_walks_the_schedule() {
        let p = FaultPlan::none()
            .shrink_memory(0, 2.0, 1 << 20)
            .set_memory(1, 5.0, 1 << 30);
        assert_eq!(p.next_mem_change_after(0.0), Some(2.0));
        assert_eq!(p.next_mem_change_after(2.0), Some(5.0), "strictly after");
        assert_eq!(p.next_mem_change_after(5.0), None, "schedule exhausted");
        assert_eq!(FaultPlan::none().next_mem_change_after(0.0), None);
    }

    #[test]
    fn mem_sets_round_trip_in_json_and_validate() {
        let p = FaultPlan::none()
            .set_memory(2, 1.5, 1 << 33)
            .shrink_memory(0, 0.25, 1 << 20);
        let json = p.to_json();
        assert!(json.contains("\"mem_sets\""));
        let q = FaultPlan::from_json(&json).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.to_json(), json);
        // Plans serialized before mem_sets existed still parse.
        let legacy = "{\"deaths\":[],\"stragglers\":[],\"mem_shrinks\":[],\"lost_fetch_prob\":0.0,\"seed\":1}";
        assert!(FaultPlan::from_json(legacy).unwrap().mem_sets().is_empty());
        // Validation: negative times and out-of-range nodes are typed.
        match FaultPlan::from_json("{\"mem_sets\":[{\"node\":0,\"at_s\":-1.0,\"to_bytes\":1}]}") {
            Err(FaultPlanError::NegativeTime {
                what: "mem_set", ..
            }) => {}
            other => panic!("expected NegativeTime, got {other:?}"),
        }
        assert_eq!(
            FaultPlan::none().set_memory(9, 0.0, 1).validate(4, 32),
            Err(FaultPlanError::NodeOutOfRange {
                what: "mem_set",
                node: 9,
                nodes: 4
            })
        );
    }

    #[test]
    fn mem_shrinks_round_trip_in_json() {
        let p = FaultPlan::none()
            .kill_node(1, 0.5)
            .shrink_memory(0, 1.25, 17_179_869_184); // 16 GiB
        let json = p.to_json();
        assert!(json.contains("\"mem_shrinks\""));
        let q = FaultPlan::from_json(&json).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.to_json(), json);
    }

    // ---- typed validation (hardened from_json) ----

    #[test]
    fn from_json_rejects_duplicate_node_deaths() {
        let json = "{\"deaths\":[{\"node\":1,\"at_s\":1.0},{\"node\":1,\"at_s\":2.0}]}";
        assert_eq!(
            FaultPlan::from_json(json),
            Err(FaultPlanError::DuplicateDeath { node: 1 })
        );
    }

    #[test]
    fn from_json_errors_are_typed() {
        match FaultPlan::from_json("{\"deaths\":[{\"node\":0,\"at_s\":-1.0}]}") {
            Err(FaultPlanError::NegativeTime { what: "death", .. }) => {}
            other => panic!("expected NegativeTime, got {other:?}"),
        }
        match FaultPlan::from_json("{\"mem_shrinks\":[{\"node\":0,\"at_s\":-2.0,\"to_bytes\":1}]}")
        {
            Err(FaultPlanError::NegativeTime {
                what: "mem_shrink", ..
            }) => {}
            other => panic!("expected NegativeTime, got {other:?}"),
        }
        match FaultPlan::from_json("{\"lost_fetch_prob\":2.0,\"seed\":0}") {
            Err(FaultPlanError::InvalidProbability { prob }) => assert_eq!(prob, 2.0),
            other => panic!("expected InvalidProbability, got {other:?}"),
        }
        match FaultPlan::from_json("{\"stragglers\":[{\"core\":3,\"factor\":0.5}]}") {
            Err(FaultPlanError::SubUnitFactor { core: 3, .. }) => {}
            other => panic!("expected SubUnitFactor, got {other:?}"),
        }
        match FaultPlan::from_json("{\"bogus\":1}") {
            Err(FaultPlanError::UnknownField {
                context: "plan",
                key,
            }) => {
                assert_eq!(key, "bogus")
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
        // Errors render through Display/Error.
        let e = FaultPlanError::DuplicateDeath { node: 7 };
        assert!(e.to_string().contains("node 7"));
    }

    // ---- stream faults ----

    #[test]
    fn stream_builders_accumulate_and_query() {
        let p = FaultPlan::none()
            .stall_producer(2.0, 1.5)
            .crash_producer(10.0)
            .drop_frame(7)
            .delay_frame(3, 0.5)
            .delay_frame(3, 0.25);
        assert!(!p.is_empty());
        assert_eq!(p.producer_stalls().len(), 2);
        assert!(p.producer_stalls()[1].is_crash());
        assert_eq!(p.producer_crash(), Some(10.0));
        assert_eq!(p.frame_drops(), &[FrameDrop { frame: 7 }]);
        assert_eq!(p.frame_delay(3), 0.75, "delays accumulate");
        assert_eq!(p.frame_delay(4), 0.0);
        assert_eq!(FaultPlan::none().producer_crash(), None);
    }

    #[test]
    fn frame_coins_are_deterministic_and_independent() {
        let p = FaultPlan::none()
            .seeded(99)
            .drop_frames(0.3)
            .duplicate_frames(0.3);
        let q = p.clone();
        let (mut drops, mut dups) = (0, 0);
        let n = 4000;
        for i in 0..n {
            assert_eq!(p.frame_dropped(i), q.frame_dropped(i));
            assert_eq!(p.frame_duplicated(i), q.frame_duplicated(i));
            drops += usize::from(p.frame_dropped(i));
            dups += usize::from(p.frame_duplicated(i));
        }
        let (dr, du) = (drops as f64 / n as f64, dups as f64 / n as f64);
        assert!((dr - 0.3).abs() < 0.05, "drop rate {dr} far from 0.3");
        assert!((du - 0.3).abs() < 0.05, "dup rate {du} far from 0.3");
        // The two coins are salted apart: the outcomes differ somewhere.
        assert!((0..64).any(|i| p.frame_dropped(i) != p.frame_duplicated(i)));
        // A plan without the probabilities never fires either coin.
        let clean = FaultPlan::none().seeded(99);
        assert!((0..64).all(|i| !clean.frame_dropped(i) && !clean.frame_duplicated(i)));
    }

    #[test]
    fn stream_faults_round_trip_in_json() {
        let p = FaultPlan::none()
            .stall_producer(1.5, 2.25)
            .crash_producer(30.0) // infinite for_s: the -1.0 sentinel path
            .drop_frame(4)
            .drop_frame(19)
            .delay_frame(6, 1.75)
            .seeded(77)
            .drop_frames(0.125)
            .duplicate_frames(0.0625);
        let json = p.to_json();
        assert!(json.contains("\"producer_stalls\""));
        assert!(json.contains("\"for_s\":-1.0"), "crash serialized as -1");
        let q = FaultPlan::from_json(&json).unwrap();
        assert_eq!(p, q, "round-trip must be exact, including the crash");
        assert!(q.producer_stalls()[1].is_crash());
        assert_eq!(q.to_json(), json, "re-serialization is stable");
        // Plans serialized before stream faults existed still parse.
        let legacy = "{\"deaths\":[],\"stragglers\":[],\"mem_shrinks\":[],\"mem_sets\":[],\"lost_fetch_prob\":0.0,\"seed\":1}";
        let old = FaultPlan::from_json(legacy).unwrap();
        assert!(old.producer_stalls().is_empty());
        assert_eq!(old.frame_drop_prob(), 0.0);
    }

    #[test]
    fn stream_fault_json_validation_is_typed() {
        match FaultPlan::from_json("{\"producer_stalls\":[{\"at_s\":-1.0,\"for_s\":2.0}]}") {
            Err(FaultPlanError::NegativeTime {
                what: "producer_stall",
                ..
            }) => {}
            other => panic!("expected NegativeTime, got {other:?}"),
        }
        assert!(
            FaultPlan::from_json("{\"producer_stalls\":[{\"at_s\":1.0,\"for_s\":0.0}]}").is_err(),
            "zero-length stalls are invalid"
        );
        match FaultPlan::from_json("{\"frame_delays\":[{\"frame\":0,\"by_s\":-0.5}]}") {
            Err(FaultPlanError::NegativeTime {
                what: "frame_delay",
                ..
            }) => {}
            other => panic!("expected NegativeTime, got {other:?}"),
        }
        match FaultPlan::from_json("{\"frame_drop_prob\":1.5}") {
            Err(FaultPlanError::InvalidProbability { prob }) => assert_eq!(prob, 1.5),
            other => panic!("expected InvalidProbability, got {other:?}"),
        }
    }

    #[test]
    fn unknown_fields_are_a_typed_error_at_every_level() {
        // A stream-fault plan read by a reader that predates the schema
        // must fail loudly with the offending key, not silently skip it.
        match FaultPlan::from_json(
            "{\"producer_stalls\":[{\"at_s\":0.5,\"for_s\":1.0,\"retries\":3}]}",
        ) {
            Err(FaultPlanError::UnknownField { context, key }) => {
                assert_eq!(context, "producer_stall");
                assert_eq!(key, "retries");
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
        match FaultPlan::from_json("{\"deaths\":[{\"node\":0,\"at_s\":1.0,\"blast_radius\":2}]}") {
            Err(FaultPlanError::UnknownField {
                context: "death",
                key,
            }) => {
                assert_eq!(key, "blast_radius")
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
        let e = FaultPlanError::UnknownField {
            context: "plan",
            key: "bogus".into(),
        };
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn validate_checks_node_and_core_ranges() {
        let p = FaultPlan::none().kill_node(2, 1.0);
        assert!(p.validate(4, 32).is_ok());
        assert_eq!(
            p.validate(2, 32),
            Err(FaultPlanError::NodeOutOfRange {
                what: "death",
                node: 2,
                nodes: 2
            })
        );
        let s = FaultPlan::none().slow_core(40, 2.0);
        assert_eq!(
            s.validate(4, 32),
            Err(FaultPlanError::CoreOutOfRange {
                core: 40,
                cores: 32
            })
        );
        let m = FaultPlan::none().shrink_memory(9, 0.0, 1);
        assert_eq!(
            m.validate(4, 32),
            Err(FaultPlanError::NodeOutOfRange {
                what: "mem_shrink",
                node: 9,
                nodes: 4
            })
        );
        assert!(FaultPlan::none().validate(1, 1).is_ok());
    }

    // ---- partitions and link degradation ----

    #[test]
    fn partition_reachability_semantics() {
        let p = FaultPlan::none().partition(vec![vec![0, 1], vec![2, 3]], 10.0, 20.0);
        assert!(p.has_partitions());
        assert!(!p.is_empty());
        // Same side of the cut, or outside the window: reachable.
        assert!(p.can_reach(0, 1, 15.0));
        assert!(p.can_reach(2, 3, 15.0));
        assert!(p.can_reach(0, 2, 9.99));
        assert!(p.can_reach(0, 2, 20.0), "heal bound is half-open");
        // Across the cut while active: unreachable.
        assert!(!p.can_reach(0, 2, 10.0));
        assert!(!p.can_reach(3, 1, 19.99));
        // Self-loops always reach.
        assert!(p.can_reach(2, 2, 15.0));
        assert_eq!(p.cut_between(0, 2, 15.0), Some((10.0, 20.0)));
        assert_eq!(p.cut_between(0, 1, 15.0), None);
        assert_eq!(p.next_cut_after(0, 2, 5.0), Some((10.0, 20.0)));
        assert_eq!(p.next_cut_after(0, 2, 10.0), None, "strictly after");
        assert_eq!(p.earliest_reach(0, 2, 15.0), 20.0);
        assert_eq!(p.earliest_reach(0, 2, 3.0), 3.0);
    }

    #[test]
    fn unlisted_nodes_form_the_remainder_group() {
        // Node 4 is unlisted: it sits outside every group and is cut off
        // from all listed groups (it has no group, so `group_of` is None
        // for it but Some for listed nodes).
        let p = FaultPlan::none().partition(vec![vec![0], vec![1]], 0.0, 5.0);
        assert!(!p.can_reach(0, 4, 1.0));
        assert!(!p.can_reach(1, 4, 1.0));
        // Two unlisted nodes share the remainder group.
        assert!(p.can_reach(4, 5, 1.0));
    }

    #[test]
    fn earliest_reach_walks_heal_chains() {
        let p = FaultPlan::none()
            .partition(vec![vec![0], vec![1]], 1.0, 2.0)
            .partition(vec![vec![0], vec![1]], 2.0, 4.0);
        // At t=1.5 the first cut is live; its heal at 2.0 lands inside
        // the second cut, so reachability only resumes at 4.0.
        assert_eq!(p.earliest_reach(0, 1, 1.5), 4.0);
    }

    #[test]
    fn link_degradation_inflates_latency_and_flips_loss_coins() {
        let p = FaultPlan::none()
            .degrade_link(0, 2, 3.0, 0.5, 5.0, 15.0)
            .seeded(99);
        assert_eq!(p.link_latency_factor(0, 2, 10.0), 3.0);
        assert_eq!(p.link_latency_factor(2, 0, 10.0), 3.0, "symmetric");
        assert_eq!(p.link_latency_factor(0, 2, 4.0), 1.0);
        assert_eq!(p.link_latency_factor(0, 1, 10.0), 1.0);
        // Coin is deterministic in (plan seed, link, attempt) and roughly
        // calibrated to the configured probability.
        let mut lost = 0;
        let n = 4000;
        for i in 0..n {
            let a = p.link_lost(0, 2, i, 10.0);
            assert_eq!(a, p.link_lost(2, 0, i, 10.0), "symmetric coin");
            lost += usize::from(a);
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "loss rate {rate} far from 0.5");
        assert!(!p.link_lost(0, 2, 0, 20.0), "no loss outside the window");
    }

    #[test]
    fn partition_json_round_trips_exactly() {
        let p = FaultPlan::none()
            .partition(vec![vec![0, 1], vec![2]], 1.5, 7.25)
            .degrade_link(0, 3, 2.5, 0.125, 0.5, 9.0)
            .kill_node(1, 3.0);
        let json = p.to_json();
        let q = FaultPlan::from_json(&json).unwrap();
        assert_eq!(p, q, "round-trip must be exact, bit-for-bit");
        assert_eq!(q.to_json(), json, "re-serialization is stable");
    }

    #[test]
    fn legacy_plans_without_partition_fields_still_parse() {
        let json = "{\"deaths\":[{\"node\":0,\"at_s\":1.0}],\"seed\":3}";
        let p = FaultPlan::from_json(json).unwrap();
        assert!(p.partitions().is_empty());
        assert!(p.link_degrades().is_empty());
        assert!(!p.has_partitions());
    }

    #[test]
    fn partition_json_rejects_bad_plans_with_typed_errors() {
        // Heal at or before the cut.
        match FaultPlan::from_json(
            "{\"partitions\":[{\"groups\":[[0],[1]],\"from_s\":5.0,\"to_s\":5.0}]}",
        ) {
            Err(FaultPlanError::HealBeforeCut {
                what: "partition",
                from_s,
                to_s,
            }) => {
                assert_eq!((from_s, to_s), (5.0, 5.0));
            }
            other => panic!("expected HealBeforeCut, got {other:?}"),
        }
        // One node in two groups of the same partition.
        match FaultPlan::from_json(
            "{\"partitions\":[{\"groups\":[[0,1],[1]],\"from_s\":0.0,\"to_s\":5.0}]}",
        ) {
            Err(FaultPlanError::OverlappingPartition { node: 1 }) => {}
            other => panic!("expected OverlappingPartition, got {other:?}"),
        }
        // Two time-overlapping partitions claiming the same node.
        match FaultPlan::from_json(
            "{\"partitions\":[{\"groups\":[[0],[1]],\"from_s\":0.0,\"to_s\":5.0},\
             {\"groups\":[[1],[2]],\"from_s\":4.0,\"to_s\":6.0}]}",
        ) {
            Err(FaultPlanError::OverlappingPartition { node: 1 }) => {}
            other => panic!("expected OverlappingPartition, got {other:?}"),
        }
        // Disjoint windows over the same node are fine.
        assert!(FaultPlan::from_json(
            "{\"partitions\":[{\"groups\":[[0],[1]],\"from_s\":0.0,\"to_s\":5.0},\
             {\"groups\":[[1],[2]],\"from_s\":5.0,\"to_s\":6.0}]}",
        )
        .is_ok());
        // Sub-unit latency factor on a link.
        match FaultPlan::from_json(
            "{\"links\":[{\"a\":0,\"b\":1,\"latency_factor\":0.5,\"loss_prob\":0.0,\
             \"from_s\":0.0,\"to_s\":1.0}]}",
        ) {
            Err(FaultPlanError::SubUnitLinkFactor { a: 0, b: 1, factor }) => {
                assert_eq!(factor, 0.5);
            }
            other => panic!("expected SubUnitLinkFactor, got {other:?}"),
        }
        // Unknown fields stay typed at the new levels.
        match FaultPlan::from_json(
            "{\"partitions\":[{\"groups\":[[0]],\"from_s\":0.0,\"to_s\":1.0,\"mode\":1}]}",
        ) {
            Err(FaultPlanError::UnknownField {
                context: "partition",
                key,
            }) => assert_eq!(key, "mode"),
            other => panic!("expected UnknownField, got {other:?}"),
        }
        match FaultPlan::from_json(
            "{\"links\":[{\"a\":0,\"b\":1,\"latency_factor\":1.0,\"loss_prob\":0.0,\
             \"from_s\":0.0,\"to_s\":1.0,\"jitter\":0.1}]}",
        ) {
            Err(FaultPlanError::UnknownField {
                context: "link",
                key,
            }) => assert_eq!(key, "jitter"),
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn partition_validate_checks_node_ranges() {
        let p = FaultPlan::none().partition(vec![vec![0], vec![5]], 0.0, 1.0);
        assert!(p.validate(6, 8).is_ok());
        assert_eq!(
            p.validate(4, 8),
            Err(FaultPlanError::NodeOutOfRange {
                what: "partition",
                node: 5,
                nodes: 4
            })
        );
        let l = FaultPlan::none().degrade_link(0, 7, 2.0, 0.0, 0.0, 1.0);
        assert_eq!(
            l.validate(4, 8),
            Err(FaultPlanError::NodeOutOfRange {
                what: "link",
                node: 7,
                nodes: 4
            })
        );
    }
}
