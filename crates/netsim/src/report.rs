//! Execution reports: what an experiment run measures.

use crate::trace::Trace;

/// A named interval of the simulated run (e.g. "broadcast",
/// "edge-discovery", "connected-components"). Fig. 8's broadcast/runtime
/// breakdown is a two-phase report.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    pub name: String,
    pub start_s: f64,
    pub end_s: f64,
}

impl Phase {
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Aggregate metrics of one simulated framework run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Virtual wall-clock of the whole job.
    pub makespan_s: f64,
    /// Number of tasks placed.
    pub tasks: usize,
    /// Sum of simulated task durations (includes per-task overhead charged
    /// inside tasks).
    pub compute_s: f64,
    /// Framework overhead charged outside task bodies (startup, dispatch,
    /// DB round-trips).
    pub overhead_s: f64,
    /// Time spent in communication on the critical path.
    pub comm_s: f64,
    pub bytes_broadcast: u64,
    pub bytes_shuffled: u64,
    pub bytes_staged: u64,
    /// Task attempts beyond the first: reruns after a worker death,
    /// speculative backups that won, re-sent shuffle fetches.
    pub retries: usize,
    /// Map partitions recomputed from lineage because the node holding
    /// their shuffle output died (Spark's recovery path).
    pub recomputed_partitions: usize,
    /// Virtual core-time thrown away by failures: partial work of killed
    /// task attempts.
    pub lost_time_s: f64,
    /// Bytes written to local scratch disk under memory pressure (Spark's
    /// MEMORY_AND_DISK overflow, Dask's spill threshold, shuffle spills).
    /// Each spilled byte also costs disk bandwidth in virtual time.
    pub bytes_spilled: u64,
    /// Bytes of cached/resident state dropped under memory pressure; the
    /// data is recovered by lineage recompute on next access, never lost.
    pub bytes_evicted: u64,
    /// Tasks or workers killed outright because a node's memory budget
    /// could not accommodate them even after spilling/evicting.
    pub oom_kills: usize,
    /// Attempts orphaned by a false-positive failure detection: the node
    /// was partitioned, not dead, and the attempt kept computing while its
    /// task was rescheduled elsewhere.
    pub zombie_attempts: usize,
    /// Virtual core-time burned by zombie attempts — work that completed
    /// but whose result was fenced off. Wasted-work accounting distinct
    /// from `lost_time_s` (partial work of killed attempts).
    pub zombie_time_s: f64,
    /// Stale results rejected by fencing (attempt epochs / generation
    /// numbers). Each fenced result corresponds to exactly one zombie or
    /// superseded delivery that was *not* double-counted.
    pub fenced_results: usize,
    /// Per-node resident-memory high-water marks (bytes), indexed by node.
    /// Empty when the run never engaged the memory ledger.
    pub mem_high_water: Vec<u64>,
    pub phases: Vec<Phase>,
    /// The recorded event schedule, when tracing was enabled on the
    /// executor (or always, for engines whose event count is small). Lives
    /// in the report so it survives every engine's `report()` clone path.
    pub trace: Option<Trace>,
}

impl SimReport {
    /// Record a phase interval.
    pub fn push_phase(&mut self, name: impl Into<String>, start_s: f64, end_s: f64) {
        assert!(end_s >= start_s, "phase ends before it starts");
        self.phases.push(Phase {
            name: name.into(),
            start_s,
            end_s,
        });
    }

    /// Duration of the first phase with this name, if recorded. Prefer
    /// [`Self::phase_total`] when the name can recur (e.g. one `"shuffle"`
    /// per wide op): this returns only the first occurrence.
    pub fn phase_duration(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(Phase::duration)
    }

    /// Total duration across *all* phases with this name (`None` if the
    /// name was never recorded). Engines push one phase per occurrence —
    /// one `"shuffle"` per wide op, one `"recovery"` per failure — so
    /// summing is the right aggregate for share-of-runtime questions.
    pub fn phase_total(&self, name: &str) -> Option<f64> {
        let mut found = false;
        let mut sum = 0.0;
        for p in self.phases.iter().filter(|p| p.name == name) {
            found = true;
            sum += p.duration();
        }
        found.then_some(sum)
    }

    /// Throughput in tasks per simulated second (0 for an empty run).
    pub fn throughput(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.tasks as f64 / self.makespan_s
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_and_lookup() {
        let mut r = SimReport::default();
        r.push_phase("broadcast", 0.0, 1.5);
        r.push_phase("map", 1.5, 4.0);
        assert_eq!(r.phase_duration("broadcast"), Some(1.5));
        assert_eq!(r.phase_duration("map"), Some(2.5));
        assert_eq!(r.phase_duration("reduce"), None);
    }

    #[test]
    fn phase_total_sums_all_occurrences() {
        let mut r = SimReport::default();
        r.push_phase("shuffle", 0.0, 1.0);
        r.push_phase("map", 1.0, 2.0);
        r.push_phase("shuffle", 2.0, 2.5);
        // phase_duration sees only the first occurrence — the bug
        // phase_total exists to fix.
        assert_eq!(r.phase_duration("shuffle"), Some(1.0));
        assert_eq!(r.phase_total("shuffle"), Some(1.5));
        assert_eq!(r.phase_total("map"), Some(1.0));
        assert_eq!(r.phase_total("reduce"), None);
    }

    #[test]
    fn throughput() {
        let r = SimReport {
            makespan_s: 2.0,
            tasks: 100,
            ..Default::default()
        };
        assert_eq!(r.throughput(), 50.0);
        assert_eq!(SimReport::default().throughput(), 0.0);
    }

    #[test]
    #[should_panic]
    fn inverted_phase_panics() {
        SimReport::default().push_phase("x", 2.0, 1.0);
    }
}
