//! Execution reports: what an experiment run measures.

use serde::{Deserialize, Serialize};

/// A named interval of the simulated run (e.g. "broadcast",
/// "edge-discovery", "connected-components"). Fig. 8's broadcast/runtime
/// breakdown is a two-phase report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    pub name: String,
    pub start_s: f64,
    pub end_s: f64,
}

impl Phase {
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Aggregate metrics of one simulated framework run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Virtual wall-clock of the whole job.
    pub makespan_s: f64,
    /// Number of tasks placed.
    pub tasks: usize,
    /// Sum of simulated task durations (includes per-task overhead charged
    /// inside tasks).
    pub compute_s: f64,
    /// Framework overhead charged outside task bodies (startup, dispatch,
    /// DB round-trips).
    pub overhead_s: f64,
    /// Time spent in communication on the critical path.
    pub comm_s: f64,
    pub bytes_broadcast: u64,
    pub bytes_shuffled: u64,
    pub bytes_staged: u64,
    pub phases: Vec<Phase>,
}

impl SimReport {
    /// Record a phase interval.
    pub fn push_phase(&mut self, name: impl Into<String>, start_s: f64, end_s: f64) {
        assert!(end_s >= start_s, "phase ends before it starts");
        self.phases.push(Phase { name: name.into(), start_s, end_s });
    }

    /// Duration of the first phase with this name, if recorded.
    pub fn phase_duration(&self, name: &str) -> Option<f64> {
        self.phases.iter().find(|p| p.name == name).map(Phase::duration)
    }

    /// Throughput in tasks per simulated second (0 for an empty run).
    pub fn throughput(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.tasks as f64 / self.makespan_s
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_and_lookup() {
        let mut r = SimReport::default();
        r.push_phase("broadcast", 0.0, 1.5);
        r.push_phase("map", 1.5, 4.0);
        assert_eq!(r.phase_duration("broadcast"), Some(1.5));
        assert_eq!(r.phase_duration("map"), Some(2.5));
        assert_eq!(r.phase_duration("reduce"), None);
    }

    #[test]
    fn throughput() {
        let r = SimReport { makespan_s: 2.0, tasks: 100, ..Default::default() };
        assert_eq!(r.throughput(), 50.0);
        assert_eq!(SimReport::default().throughput(), 0.0);
    }

    #[test]
    #[should_panic]
    fn inverted_phase_panics() {
        SimReport::default().push_phase("x", 2.0, 1.0);
    }
}
