//! A miniature Ensemble Toolkit (EnTK) — the higher-level abstraction the
//! paper's architecture diagram (Fig. 1) places above RADICAL-Pilot.
//!
//! EnTK organizes work as **pipelines of stages of tasks**: stages run in
//! order (a stage starts only when its predecessor's tasks all finished),
//! tasks within a stage run concurrently on the pilot. This is exactly the
//! "workflows involving compute-intensive tasks" shape of §3.4, and what
//! the paper used RADICAL-Pilot for at production scale (replica exchange,
//! binding-affinity ensembles).

use crate::{PilotRunOutput, Session, UnitDescription};
use netsim::SimReport;
use taskframe::{EngineError, Payload, TaskCtx};

/// One stage: a set of independent tasks, all of which must finish before
/// the next stage starts.
pub struct Stage<T> {
    pub name: String,
    pub tasks: Vec<UnitDescription<T>>,
}

impl<T> Stage<T> {
    pub fn new(name: impl Into<String>) -> Self {
        Stage {
            name: name.into(),
            tasks: Vec::new(),
        }
    }

    /// Add a compute-only task.
    pub fn task(mut self, f: impl FnOnce(&TaskCtx, &[u8]) -> T + Send + 'static) -> Self {
        self.tasks.push(UnitDescription::compute_only(f));
        self
    }

    /// Add a task with staged input.
    pub fn task_with_input(
        mut self,
        input: Vec<u8>,
        f: impl FnOnce(&TaskCtx, &[u8]) -> T + Send + 'static,
    ) -> Self {
        self.tasks.push(UnitDescription::new(input, f));
        self
    }
}

/// A pipeline: stages executed strictly in order.
pub struct Pipeline<T> {
    pub name: String,
    pub stages: Vec<Stage<T>>,
}

impl<T: Payload + Send> Pipeline<T> {
    pub fn new(name: impl Into<String>) -> Self {
        Pipeline {
            name: name.into(),
            stages: Vec::new(),
        }
    }

    pub fn stage(mut self, stage: Stage<T>) -> Self {
        self.stages.push(stage);
        self
    }

    /// Execute on a pilot session. Returns per-stage results (stage order,
    /// task order within stage) and the cumulative report, with one phase
    /// recorded per stage.
    pub fn run(self, session: &Session) -> Result<PipelineOutput<T>, EngineError> {
        let mut stage_results = Vec::with_capacity(self.stages.len());
        let mut report = SimReport::default();
        let mut phases = Vec::with_capacity(self.stages.len());
        let mut stage_start = session.report().makespan_s;
        for stage in self.stages {
            let name = stage.name;
            let PilotRunOutput { results, report: r } = session.submit_and_wait(stage.tasks)?;
            // The session report accumulates across submissions; collect
            // per-stage phases separately and attach them at the end.
            report = r;
            phases.push((name.clone(), stage_start, report.makespan_s));
            stage_start = report.makespan_s;
            stage_results.push((name, results));
        }
        for (name, start, end) in phases {
            report.push_phase(name, start, end);
        }
        Ok(PipelineOutput {
            stages: stage_results,
            report,
        })
    }
}

/// Results of a pipeline run.
pub struct PipelineOutput<T> {
    /// `(stage name, task results)` in execution order.
    pub stages: Vec<(String, Vec<T>)>,
    pub report: SimReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{laptop, Cluster};

    fn session() -> Session {
        Session::new(Cluster::new(laptop(), 1)).unwrap()
    }

    #[test]
    fn stages_run_in_order_with_phases() {
        let s = session();
        let pipeline = Pipeline::new("demo")
            .stage(Stage::new("simulate").task(|_, _| 1u64).task(|_, _| 2u64))
            .stage(Stage::new("analyze").task(|_, _| 3u64));
        let out = pipeline.run(&s).unwrap();
        assert_eq!(out.stages.len(), 2);
        assert_eq!(out.stages[0].1, vec![1, 2]);
        assert_eq!(out.stages[1].1, vec![3]);
        let sim = out.report.phase_total("simulate").unwrap();
        let ana = out.report.phase_total("analyze").unwrap();
        assert!(sim > 0.0 && ana > 0.0);
        assert_eq!(out.report.tasks, 3);
    }

    #[test]
    fn stage_barrier_holds_in_virtual_time() {
        let s = session();
        let out = Pipeline::new("barrier")
            .stage(Stage::new("a").task(|ctx: &TaskCtx, _| {
                ctx.charge(0.0);
                0u64
            }))
            .stage(Stage::new("b").task(|_, _| 0u64))
            .run(&s)
            .unwrap();
        let a_end = out
            .report
            .phases
            .iter()
            .find(|p| p.name == "a")
            .unwrap()
            .end_s;
        let b_start = out
            .report
            .phases
            .iter()
            .find(|p| p.name == "b")
            .unwrap()
            .start_s;
        assert!(
            b_start >= a_end,
            "stage b started at {b_start} before a ended at {a_end}"
        );
    }

    #[test]
    fn staged_inputs_flow_through() {
        let s = session();
        let out = Pipeline::new("io")
            .stage(Stage::new("in").task_with_input(vec![7u8; 5], |_, input| input.len() as u64))
            .run(&s)
            .unwrap();
        assert_eq!(out.stages[0].1, vec![5]);
        assert!(out.report.bytes_staged >= 5);
    }
}
