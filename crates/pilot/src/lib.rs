//! A RADICAL-Pilot-equivalent engine.
//!
//! Reproduces the architecture the paper holds responsible for
//! RADICAL-Pilot's performance envelope (§3.3, §4.1):
//!
//! * **Pilot-Job model** — a [`Session`] acquires the whole allocation up
//!   front (pilot bootstrap is expensive: tens of seconds) and then
//!   schedules Compute-Units onto it without further queue waits.
//! * **Database-mediated state machine** — every Compute-Unit walks the
//!   state ladder `NEW → UMGR_SCHEDULING → AGENT_SCHEDULING →
//!   AGENT_EXECUTING → DONE`, and **every transition is a round-trip
//!   through a single MongoDB** ([`SimDb`]). Because the database is one
//!   serial resource, job throughput plateaus at
//!   `1 / (transitions × db_latency)` — below 100 tasks/s — no matter how
//!   many nodes the pilot holds. This is the mechanism behind Fig. 2/3's
//!   RADICAL-Pilot curves and Fig. 9's overhead-dominated runtimes.
//! * **Filesystem staging, no shuffle** (Table 1) — unit inputs are
//!   *really written* to a staging directory and read back by the unit;
//!   there is no inter-task communication primitive at all.
//! * **Scale ceiling** — submitting more than 16,384 units is refused,
//!   matching "we were not able to scale RADICAL-Pilot to 32k or more
//!   tasks" (§4.1).

pub mod entk;
pub mod mapreduce;

use mdio::StagingArea;
use netsim::{Cluster, RetryPolicy, SimExecutor, SimReport};
use parking_lot::Mutex;
use taskframe::{pilot_profile, EngineError, FrameworkProfile, Payload, TaskCtx};

/// Compute-Unit states, in ladder order. Each transition is one DB
/// round-trip (the real RADICAL-Pilot has more states; four round-trips
/// per CU reproduces its measured per-task cost).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitState {
    New,
    UmgrScheduling,
    AgentScheduling,
    AgentExecuting,
    Done,
}

/// The transitions that go through the database.
pub const DB_TRANSITIONS: usize = 4;

/// Maximum units per submission (paper §4.1).
pub const MAX_UNITS: usize = 16_384;

/// The shared MongoDB stand-in: a single serial timeline. Every state
/// transition of every unit must wait for the database to be free and then
/// occupies it for one round-trip latency.
#[derive(Debug)]
pub struct SimDb {
    free_at: f64,
    roundtrip_s: f64,
    ops: u64,
}

impl SimDb {
    pub fn new(roundtrip_s: f64) -> Self {
        assert!(roundtrip_s > 0.0);
        SimDb {
            free_at: 0.0,
            roundtrip_s,
            ops: 0,
        }
    }

    /// Perform one round-trip that becomes possible at virtual time `at`;
    /// returns its completion time.
    pub fn roundtrip(&mut self, at: f64) -> f64 {
        let done = self.free_at.max(at) + self.roundtrip_s;
        self.free_at = done;
        self.ops += 1;
        done
    }

    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// Description of one Compute-Unit: staged-in input bytes plus the
/// executable. The closure receives the staged input exactly as read back
/// from the filesystem.
/// The staged executable of a Compute-Unit.
pub type UnitTask<T> = Box<dyn FnOnce(&TaskCtx, &[u8]) -> T + Send>;

pub struct UnitDescription<T> {
    pub input: Vec<u8>,
    pub task: UnitTask<T>,
    /// Declared peak memory of the unit while executing (RADICAL-Pilot's
    /// CUD `memory` attribute). The agent scheduler admits only as many
    /// concurrent units per node as declared working sets fit the node's
    /// memory budget; `0` declares nothing and opts out of admission
    /// control.
    pub working_set_bytes: u64,
}

impl<T> UnitDescription<T> {
    pub fn new(input: Vec<u8>, task: impl FnOnce(&TaskCtx, &[u8]) -> T + Send + 'static) -> Self {
        UnitDescription {
            input,
            task: Box::new(task),
            working_set_bytes: 0,
        }
    }

    /// A unit with no staged input.
    pub fn compute_only(task: impl FnOnce(&TaskCtx, &[u8]) -> T + Send + 'static) -> Self {
        Self::new(Vec::new(), task)
    }

    /// Declare the unit's peak working-set size (enables admission
    /// control).
    pub fn with_working_set(mut self, bytes: u64) -> Self {
        self.working_set_bytes = bytes;
        self
    }
}

/// Output of a pilot run.
pub struct PilotRunOutput<T> {
    /// Unit results in submission order.
    pub results: Vec<T>,
    pub report: SimReport,
}

struct SessionState {
    exec: SimExecutor,
    db: SimDb,
    next_unit: usize,
    /// Recovery policy for failed units: bounded re-enqueues, with the
    /// agent's database-poll interval as the detection delay.
    policy: RetryPolicy,
}

/// A pilot session: one pilot holding `cluster`, one unit manager, one
/// staging area on the shared filesystem.
pub struct Session {
    cluster: Cluster,
    profile: FrameworkProfile,
    staging: StagingArea,
    state: Mutex<SessionState>,
}

impl Drop for Session {
    fn drop(&mut self) {
        // Staged unit files are per-session scratch; remove them so long
        // experiment sweeps do not fill the shared filesystem.
        std::fs::remove_dir_all(self.staging.root()).ok();
    }
}

impl Session {
    /// Boot a pilot on the allocation. Charges the pilot bootstrap time.
    pub fn new(cluster: Cluster) -> Result<Self, EngineError> {
        Self::with_profile(cluster, pilot_profile())
    }

    pub fn with_profile(cluster: Cluster, profile: FrameworkProfile) -> Result<Self, EngineError> {
        let staging = StagingArea::temp("pilot")
            .map_err(|e| EngineError::Unsupported(format!("cannot create staging area: {e}")))?;
        let mut exec = SimExecutor::new(cluster.clone());
        exec.report_mut().overhead_s += profile.startup_s;
        exec.advance_makespan(profile.startup_s);
        let db = SimDb::new(profile.central_dispatch_s / DB_TRANSITIONS as f64);
        let policy = profile.retry_policy();
        Ok(Session {
            cluster,
            profile,
            staging,
            state: Mutex::new(SessionState {
                exec,
                db,
                next_unit: 0,
                policy,
            }),
        })
    }

    /// Override the recovery policy (defaults to
    /// [`FrameworkProfile::retry_policy`]).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.state.lock().policy = policy;
    }

    /// The recovery policy currently in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.state.lock().policy
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Run an event-time windowed streaming job over a delivery schedule.
    ///
    /// The pilot posture is continuous unit re-submission: frames only
    /// accumulate window state; when a window closes, its whole frame set
    /// runs as one Compute-Unit (one unit-dispatch overhead per window).
    /// Window close, watermarks, late-frame disposition, backpressure,
    /// and per-window lineage replay follow
    /// [`netsim::stream::run_stream`]; the retry policy is the session's
    /// ([`Session::set_retry_policy`]).
    pub fn run_stream(
        &self,
        source: &netsim::stream::SourceLog,
        job: &netsim::stream::StreamJob,
        frame_value: &mut dyn FnMut(usize) -> u64,
    ) -> Result<netsim::stream::StreamRun, EngineError> {
        use netsim::stream::{run_stream, DispatchMode, StreamRun};
        let overhead = self.profile.central_dispatch_s + self.profile.worker_overhead_s;
        let spec = job.spec(DispatchMode::UnitPerWindow, overhead);
        let mut st = self.state.lock();
        let policy = st.policy;
        st.exec.set_phase("stream");
        let output = run_stream(&mut st.exec, source, &spec, &policy, frame_value)
            .map_err(EngineError::from)?;
        let report = st.exec.report().clone();
        Ok(StreamRun { output, report })
    }

    /// Submit units and wait for completion (the paper's usage mode: "all
    /// tasks were submitted simultaneously", §4.1).
    pub fn submit_and_wait<T: Payload + Send>(
        &self,
        units: Vec<UnitDescription<T>>,
    ) -> Result<PilotRunOutput<T>, EngineError> {
        if units.len() > MAX_UNITS {
            return Err(EngineError::Unsupported(format!(
                "RADICAL-Pilot cannot manage {} units (limit {MAX_UNITS}, §4.1)",
                units.len()
            )));
        }
        let mut st = self.state.lock();
        let net = self.cluster.profile.network;
        let startup = self.profile.startup_s;
        let n = units.len();
        st.exec.set_task_label("unit");
        st.exec.set_phase("staging");
        // Phase 1 — client side, all units at once ("all tasks were
        // submitted simultaneously"): NEW and UMGR_SCHEDULING trips plus
        // input staging to the shared filesystem (real writes).
        let mut t_staged = Vec::with_capacity(n);
        let mut ids = Vec::with_capacity(n);
        let mut tasks = Vec::with_capacity(n);
        let mut wsets = Vec::with_capacity(n);
        for desc in units {
            wsets.push(desc.working_set_bytes);
            let unit_id = st.next_unit;
            st.next_unit += 1;
            let t_new = st.db.roundtrip(startup);
            let t_umgr = st.db.roundtrip(t_new);
            let input_bytes = desc.input.len() as u64;
            self.staging
                .stage_in(unit_id, "input", &desc.input)
                .map_err(|e| EngineError::Unsupported(format!("staging failed: {e}")))?;
            let t_in = t_umgr
                + net.transfer_time(input_bytes, false)
                + self.profile.per_transfer_overhead_s;
            if input_bytes > 0 {
                // Client → shared filesystem (node 0 hosts the FS track).
                st.exec.record_fetch(0, 0, input_bytes, t_umgr, t_in);
            }
            t_staged.push(t_in);
            st.exec.report_mut().bytes_staged += input_bytes;
            ids.push(unit_id);
            tasks.push(desc.task);
        }
        // The units' real work — staged-input read-back plus the task
        // closure — is independent across units, so it executes across
        // host threads up front. The serial agent loop below consumes the
        // measurements in submission order, keeping DB trips, admission
        // control and placement identical to the serial run; a staging
        // error surfaces at the same per-unit point it would have serially.
        let host_threads = st.exec.host_threads();
        let computed: Vec<Result<(T, f64), EngineError>> = {
            let staging = &self.staging;
            let ids = &ids;
            netsim::parallel::run_owned_with(host_threads, tasks, |i, task| {
                let unit_id = ids[i];
                let staged = staging
                    .stage_out(unit_id, "input")
                    .map_err(|e| EngineError::Unsupported(format!("staging failed: {e}")))?;
                let tctx = TaskCtx::new(unit_id, unit_id);
                let (out, host_s) = netsim::measure(move || task(&tctx, &staged));
                Ok((out, host_s))
            })
        };
        // Phase 2 — agent side: AGENT_SCHEDULING trip per unit, then
        // execution on the pilot's cores (the staged file is really read
        // back). Executions overlap in virtual time; only DB trips
        // serialize.
        let mut results = Vec::with_capacity(n);
        let mut t_exec_end = Vec::with_capacity(n);
        // Working sets of currently-executing units: `(node, ends_at,
        // bytes)`, released once the virtual clock passes their unit.
        let mut in_flight: Vec<(usize, f64, u64)> = Vec::new();
        let per_node = self.cluster.profile.cores_per_node;
        st.exec.set_phase("execute");
        for (((_unit_id, comp), ready), ws) in ids.iter().zip(computed).zip(&t_staged).zip(&wsets) {
            let ws = *ws;
            let mut t_sched = st.db.roundtrip(*ready);
            // Admission control: the agent scheduler admits only as many
            // concurrent units per node as declared working sets fit the
            // node's (possibly fault-shrunk) memory budget. Budgets are
            // *time-varying*: a unit no node can host right now may fit a
            // scripted later budget, so the scheduler holds the unit and
            // re-evaluates at each scheduled change. Only a unit no future
            // budget can ever host surfaces typed — it must not queue
            // forever.
            if ws > 0 {
                let mut t_adm = t_sched;
                loop {
                    let mut best = (0usize, 0u64);
                    let mut admitted_somewhere = false;
                    for node in 0..self.cluster.nodes {
                        let budget = st.exec.mem_budget(node, t_adm);
                        if budget > best.1 {
                            best = (node, budget);
                        }
                        let limit = (budget.checked_div(ws).unwrap_or(0) as usize).min(per_node);
                        st.exec.set_node_core_limit(node, limit);
                        admitted_somewhere |= limit > 0;
                    }
                    if admitted_somewhere {
                        break;
                    }
                    match self.cluster.next_mem_change_after(t_adm) {
                        Some(t_next) => t_adm = t_next,
                        None => {
                            return Err(EngineError::MemoryExhausted {
                                node: best.0,
                                budget: best.1,
                                required: ws,
                                at_s: t_adm,
                                what: "declared unit working set".into(),
                            });
                        }
                    }
                }
                if t_adm > t_sched {
                    st.exec.record_recovery("admission-wait", t_sched, t_adm);
                    t_sched = t_adm;
                }
            } else {
                for node in 0..self.cluster.nodes {
                    st.exec.set_node_core_limit(node, per_node);
                }
            }
            let (out, host_s) = comp?;
            // Agent spawn overhead runs on the core too.
            let dur = self
                .cluster
                .scale_compute(host_s + self.profile.worker_overhead_s);
            // A unit whose node dies goes back to FAILED in the database.
            // The loss is noticed one agent DB poll later; the client
            // re-enqueues with backoff, paying the scheduling round-trip
            // again before a surviving core picks the unit up — bounded by
            // the policy's attempt budget.
            let policy = st.policy;
            let mut attempts: u32 = 1;
            let mut first_died: Option<f64> = None;
            let mut avoid = None;
            let placement = loop {
                let opts = netsim::TaskOpts {
                    avoid_core: avoid,
                    ..Default::default()
                };
                match st
                    .exec
                    .run_task_attempt_detected(t_sched, dur, opts, &policy)?
                {
                    netsim::TaskAttempt::Done(p) => break p,
                    netsim::TaskAttempt::Killed { died_at, core, .. } => {
                        if attempts >= policy.max_attempts {
                            return Err(EngineError::RetriesExhausted {
                                attempts,
                                last_failure_s: died_at + policy.detection_delay_s,
                            });
                        }
                        // Gate the re-enqueue against the deadline before
                        // paying the backoff and DB round-trip: a retry
                        // that could only dispatch past the deadline fails
                        // at observation time, typed.
                        let observed = died_at + policy.detection_delay_s;
                        let redispatch = st
                            .db
                            .roundtrip(observed + policy.backoff_before(attempts + 1));
                        policy.deadline_gate(observed, redispatch)?;
                        attempts += 1;
                        avoid = Some(core);
                        first_died.get_or_insert(died_at);
                        st.exec.report_mut().retries += 1;
                        t_sched = redispatch;
                        st.exec.record_recovery("re-enqueue", died_at, t_sched);
                    }
                    // A partitioned agent the DB poll gave up on: the unit
                    // went back to FAILED and was re-enqueued, but the
                    // original agent is alive and finishes behind the cut.
                    // Its eventual state update carries a stale generation
                    // number and the DB rejects it — exactly once.
                    netsim::TaskAttempt::Zombie {
                        core,
                        suspected_at,
                        deliver_at,
                        ..
                    } => {
                        if attempts >= policy.max_attempts {
                            return Err(EngineError::RetriesExhausted {
                                attempts,
                                last_failure_s: suspected_at,
                            });
                        }
                        let redispatch = st
                            .db
                            .roundtrip(suspected_at + policy.backoff_before(attempts + 1));
                        policy.deadline_gate(suspected_at, redispatch)?;
                        attempts += 1;
                        avoid = Some(core);
                        first_died.get_or_insert(suspected_at);
                        st.exec
                            .record_fenced("db-generation", suspected_at, deliver_at);
                        st.exec.report_mut().retries += 1;
                        t_sched = redispatch;
                        st.exec.record_recovery("re-enqueue", suspected_at, t_sched);
                    }
                }
            };
            if let Some(deadline) = policy.deadline_s {
                if placement.end > deadline {
                    return Err(EngineError::DeadlineExceeded {
                        deadline_s: deadline,
                        at_s: placement.start,
                    });
                }
            }
            if let Some(died_at) = first_died {
                st.exec
                    .report_mut()
                    .push_phase("recovery", died_at, placement.end);
            }
            if ws > 0 {
                // The unit's working set occupies its node for the
                // execution window; units that finished before this one
                // started have released theirs.
                in_flight.retain(|&(node, end, bytes)| {
                    if end <= placement.start {
                        st.exec.release_memory(node, bytes);
                        false
                    } else {
                        true
                    }
                });
                let node = self.cluster.node_of_core(placement.core);
                st.exec.force_reserve_memory(node, ws);
                in_flight.push((node, placement.end, ws));
            }
            let out_bytes = out.wire_bytes();
            let t_out = placement.end
                + net.transfer_time(out_bytes, false)
                + self.profile.per_transfer_overhead_s;
            if out_bytes > 0 {
                let from = self.cluster.node_of_core(placement.core);
                st.exec
                    .record_fetch(from, 0, out_bytes, placement.end, t_out);
            }
            let rep = st.exec.report_mut();
            rep.overhead_s += self.profile.central_dispatch_s + self.profile.worker_overhead_s;
            rep.bytes_staged += out_bytes;
            t_exec_end.push(t_out);
            results.push(out);
        }
        // Execution over: working sets drain and admission limits reset
        // for the next submission.
        for (node, _, bytes) in in_flight.drain(..) {
            st.exec.release_memory(node, bytes);
        }
        for node in 0..self.cluster.nodes {
            st.exec.set_node_core_limit(node, per_node);
        }
        // Phase 3 — completion: DONE trips flow back through the database
        // as results land.
        for t_out in t_exec_end {
            let t_done = st.db.roundtrip(t_out);
            st.exec.advance_makespan(t_done);
        }
        let report = st.exec.report().clone();
        Ok(PilotRunOutput { results, report })
    }

    /// Start recording a typed event trace (carried inside the report of
    /// subsequent submissions).
    pub fn enable_trace(&self) {
        self.state.lock().exec.enable_trace();
    }

    /// Start recording a *sampled* trace: keep only every `stride`-th task
    /// attempt (network/memory events stay complete). See
    /// [`netsim::SimExecutor::enable_trace_sampled`].
    pub fn enable_trace_sampled(&self, stride: u32) {
        self.state.lock().exec.enable_trace_sampled(stride);
    }

    /// Snapshot the report (after one or more submissions).
    pub fn report(&self) -> SimReport {
        self.state.lock().exec.report().clone()
    }

    /// Number of database operations performed so far.
    pub fn db_ops(&self) -> u64 {
        self.state.lock().db.ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::laptop;

    fn session() -> Session {
        Session::new(Cluster::new(laptop(), 2)).unwrap()
    }

    #[test]
    fn units_execute_and_return_in_order() {
        let s = session();
        let units: Vec<UnitDescription<u64>> = (0..10)
            .map(|i| UnitDescription::compute_only(move |_, _| i * i))
            .collect();
        let out = s.submit_and_wait(units).unwrap();
        assert_eq!(out.results, (0..10).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(out.report.tasks, 10);
    }

    #[test]
    fn staged_input_reaches_the_task() {
        let s = session();
        let units = vec![
            UnitDescription::new(b"hello".to_vec(), |_, input| input.len() as u64),
            UnitDescription::new(b"hi".to_vec(), |_, input| input.len() as u64),
        ];
        let out = s.submit_and_wait(units).unwrap();
        assert_eq!(out.results, vec![5, 2]);
        assert!(out.report.bytes_staged >= 7);
    }

    #[test]
    fn db_serializes_transitions() {
        let s = session();
        let n = 50;
        let units: Vec<UnitDescription<u64>> = (0..n)
            .map(|i| UnitDescription::compute_only(move |_, _| i))
            .collect();
        let out = s.submit_and_wait(units).unwrap();
        assert_eq!(s.db_ops(), n * DB_TRANSITIONS as u64);
        // Even with zero-work tasks, the DB floor bounds the makespan:
        // n tasks × 4 trips × 3 ms each (beyond the 35 s bootstrap).
        let floor = 35.0 + n as f64 * 0.012;
        assert!(
            out.report.makespan_s >= floor * 0.95,
            "makespan {} below DB floor {floor}",
            out.report.makespan_s
        );
    }

    #[test]
    fn throughput_plateaus_under_100_tasks_per_sec() {
        let s = session();
        let n = 200;
        let units: Vec<UnitDescription<u64>> = (0..n)
            .map(|_| UnitDescription::compute_only(|_, _| 0))
            .collect();
        let out = s.submit_and_wait(units).unwrap();
        let active = out.report.makespan_s - 35.0; // discount bootstrap
        let throughput = n as f64 / active;
        assert!(
            throughput < 100.0,
            "RP throughput {throughput} should plateau < 100/s"
        );
    }

    #[test]
    fn refuses_more_than_16k_units() {
        let s = session();
        let units: Vec<UnitDescription<u64>> = (0..MAX_UNITS + 1)
            .map(|_| UnitDescription::compute_only(|_, _| 0))
            .collect();
        match s.submit_and_wait(units) {
            Err(EngineError::Unsupported(msg)) => assert!(msg.contains("16384")),
            _ => panic!("must refuse 16k+1 units"),
        }
    }

    #[test]
    fn admission_control_serializes_fat_units() {
        // One node, 4 cores, 1 MiB budget. Units declaring 600 KiB
        // working sets fit only one at a time: admission caps the node at
        // a single usable core, so the two units execute back-to-back
        // instead of side-by-side.
        let cluster = Cluster::builder()
            .cores_per_node(4)
            .mem_budget(1 << 20)
            .build();
        let s = Session::new(cluster).unwrap();
        let units: Vec<UnitDescription<u64>> = (0..2)
            .map(|i| {
                UnitDescription::compute_only(move |_, _| {
                    // Real work long enough to overlap if both units were
                    // admitted side by side.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    i
                })
                .with_working_set(600 * 1024)
            })
            .collect();
        let out = s.submit_and_wait(units).unwrap();
        assert_eq!(out.results, vec![0, 1]);
        // Concurrent execution would have put 1.2 MiB on the node; the
        // admission limit of one unit keeps the high-water at a single
        // working set.
        let hw = out.report.mem_high_water[0];
        assert!(
            (600 * 1024..=1 << 20).contains(&hw),
            "admission must serialize fat units, high water {hw}"
        );
    }

    #[test]
    fn unit_too_fat_for_any_node_fails_typed() {
        let s = Session::new(Cluster::builder().nodes(2).mem_budget(1 << 20).build()).unwrap();
        let units = vec![UnitDescription::<u64>::compute_only(|_, _| 1).with_working_set(2 << 20)];
        match s.submit_and_wait(units) {
            Err(EngineError::MemoryExhausted { required, .. }) => {
                assert_eq!(required, 2 << 20);
            }
            other => panic!(
                "2 MiB working set on 1 MiB nodes must fail typed, got {:?}",
                other.map(|o| o.results)
            ),
        }
    }

    #[test]
    fn mem_shrink_fault_tightens_admission_mid_run() {
        // The budget shrinks to zero at t=0: even a modest declared
        // working set becomes unhostable and the submission fails typed
        // (never a hang).
        let plan = netsim::FaultPlan::none().shrink_memory(0, 0.0, 0);
        let s = Session::new(
            Cluster::builder()
                .mem_budget(1 << 20)
                .fault_plan(plan)
                .build(),
        )
        .unwrap();
        let units =
            vec![UnitDescription::<u64>::compute_only(|_, _| 1).with_working_set(64 * 1024)];
        match s.submit_and_wait(units) {
            Err(EngineError::MemoryExhausted { budget, .. }) => assert_eq!(budget, 0),
            other => panic!(
                "shrunken budget must surface typed, got {:?}",
                other.map(|o| o.results)
            ),
        }
    }

    #[test]
    fn admission_waits_for_a_budget_that_grows_after_submit() {
        // Regression: the budget is zero when the unit reaches the agent
        // scheduler, but a scripted memory *set* restores it at t=100.
        // The old admission decision looked only at "now" and refused
        // typed; the unit must instead wait for the restored budget and
        // complete.
        let plan = netsim::FaultPlan::none()
            .shrink_memory(0, 0.0, 0)
            .set_memory(0, 100.0, 1 << 20);
        let s = Session::new(
            Cluster::builder()
                .mem_budget(1 << 20)
                .fault_plan(plan)
                .build(),
        )
        .unwrap();
        s.enable_trace();
        let units =
            vec![UnitDescription::<u64>::compute_only(|_, _| 7).with_working_set(64 * 1024)];
        let out = s
            .submit_and_wait(units)
            .expect("a later budget must admit the unit");
        assert_eq!(out.results, vec![7]);
        // The wait is visible: execution starts no earlier than the
        // budget restoration, and the admission hold is a recovery event.
        assert!(
            out.report.makespan_s >= 100.0,
            "unit must wait for the t=100 budget, makespan {}",
            out.report.makespan_s
        );
        let trace = out.report.trace.as_ref().expect("traced run");
        assert!(
            trace
                .events
                .iter()
                .any(|e| trace.label_of(e) == "admission-wait"),
            "the admission hold must be recorded"
        );
    }

    #[test]
    fn simdb_timeline() {
        let mut db = SimDb::new(0.01);
        let a = db.roundtrip(0.0);
        let b = db.roundtrip(0.0); // queued behind a
        let c = db.roundtrip(5.0); // db idle until 5.0
        assert!((a - 0.01).abs() < 1e-12);
        assert!((b - 0.02).abs() < 1e-12);
        assert!((c - 5.01).abs() < 1e-12);
        assert_eq!(db.ops(), 3);
    }

    #[test]
    fn multiple_submissions_share_the_session() {
        let s = session();
        s.submit_and_wait(vec![UnitDescription::<u64>::compute_only(|_, _| 1)])
            .unwrap();
        let out = s
            .submit_and_wait(vec![UnitDescription::compute_only(|_, _| 2)])
            .unwrap();
        assert_eq!(out.report.tasks, 2, "report accumulates across submissions");
    }
}

mod bag_engine {
    //! [`taskframe::BagEngine`] adapter: one Compute-Unit per task ("for
    //! RADICAL-Pilot, all tasks were submitted simultaneously", §4.1).

    use crate::{Session, UnitDescription};
    use taskframe::{BagEngine, BagTask, EngineError};

    impl BagEngine for Session {
        fn name(&self) -> &'static str {
            "radical-pilot"
        }

        fn run_bag(
            &mut self,
            tasks: Vec<BagTask>,
        ) -> Result<(Vec<u64>, netsim::SimReport), EngineError> {
            let units: Vec<UnitDescription<u64>> = tasks
                .into_iter()
                .map(|t| {
                    UnitDescription::compute_only(move |ctx: &taskframe::TaskCtx, _: &[u8]| t(ctx))
                })
                .collect();
            let out = self.submit_and_wait(units)?;
            Ok((out.results, out.report))
        }
    }
}
