//! Pilot-MapReduce — the prototype MapReduce layer over the pilot
//! abstraction that Fig. 1 marks as "*Prototype (Not part of
//! RADICAL-Pilot Distribution)*" (Mantha et al. 2012).
//!
//! Because RADICAL-Pilot has no shuffle primitive (Table 1), the shuffle
//! here is what the paper's text implies it must be: **filesystem-based**.
//! Map units write their partitioned intermediate output through staging;
//! the client regroups it by key; reduce units read their buckets back
//! from staging. Every intermediate byte crosses the shared filesystem
//! twice — which is exactly why the paper says RP's "file staging
//! implementation … is not suitable for supporting the data exchange
//! patterns, i.e. shuffling" (§4.4.2).

use crate::{Session, UnitDescription};
use netsim::SimReport;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use taskframe::{EngineError, Payload};

/// Run MapReduce over a pilot session.
///
/// * `inputs` — one map task per element;
/// * `map` — produces key–value pairs;
/// * `n_reducers` — reduce-side parallelism (hash partitioning);
/// * `reduce` — folds all values of one key.
///
/// Returns `(key, reduced value)` pairs (deterministic order: by reducer,
/// then first appearance) and the cumulative report.
pub fn map_reduce<I, K, V, M, R>(
    session: &Session,
    inputs: Vec<I>,
    map: M,
    n_reducers: usize,
    reduce: R,
) -> Result<(Vec<(K, V)>, SimReport), EngineError>
where
    I: Send + 'static,
    K: Payload + Clone + Send + Eq + Hash + 'static,
    V: Payload + Clone + Send + 'static,
    M: Fn(I) -> Vec<(K, V)> + Clone + Send + 'static,
    R: Fn(V, V) -> V + Clone + Send + 'static,
{
    assert!(n_reducers >= 1, "need at least one reducer");
    // Map phase: one unit per input.
    let map_units: Vec<UnitDescription<Vec<(K, V)>>> = inputs
        .into_iter()
        .map(|input| {
            let map = map.clone();
            UnitDescription::compute_only(move |_ctx, _| map(input))
        })
        .collect();
    let map_out = session.submit_and_wait(map_units)?;

    // Client-side shuffle: regroup by hash bucket. The bytes moved here
    // were already charged as staging I/O by the map units' outputs; the
    // reduce units' inputs charge the second traversal.
    let mut buckets: Vec<Vec<(K, V)>> = (0..n_reducers).map(|_| Vec::new()).collect();
    for pairs in map_out.results {
        for (k, v) in pairs {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            buckets[(h.finish() % n_reducers as u64) as usize].push((k, v));
        }
    }

    // Reduce phase: one unit per bucket, input staged by size (the real
    // pairs are moved through the closure; the staged blob models the
    // filesystem traffic of the same size).
    let reduce_units: Vec<UnitDescription<Vec<(K, V)>>> = buckets
        .into_iter()
        .map(|bucket| {
            let reduce = reduce.clone();
            let staged_len = bucket.wire_bytes() as usize;
            UnitDescription::new(vec![0u8; staged_len], move |_ctx, _| {
                let mut order: Vec<K> = Vec::new();
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in bucket {
                    match acc.remove(&k) {
                        Some(prev) => {
                            acc.insert(k, reduce(prev, v));
                        }
                        None => {
                            order.push(k.clone());
                            acc.insert(k, v);
                        }
                    }
                }
                order
                    .into_iter()
                    .map(|k| {
                        let v = acc.remove(&k).expect("key present");
                        (k, v)
                    })
                    .collect()
            })
        })
        .collect();
    let reduce_out = session.submit_and_wait(reduce_units)?;
    Ok((
        reduce_out.results.into_iter().flatten().collect(),
        reduce_out.report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{laptop, Cluster};

    fn session() -> Session {
        Session::new(Cluster::new(laptop(), 1)).unwrap()
    }

    #[test]
    fn word_count_shape() {
        let s = session();
        let docs = vec![vec![1u32, 2, 2], vec![2, 3], vec![1, 3, 3, 3]];
        let (mut out, report) = map_reduce(
            &s,
            docs,
            |doc: Vec<u32>| doc.into_iter().map(|w| (w, 1u64)).collect(),
            2,
            |a, b| a + b,
        )
        .unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![(1, 2), (2, 3), (3, 4)]);
        assert_eq!(report.tasks, 3 + 2, "3 map units + 2 reduce units");
        assert!(
            report.bytes_staged > 0,
            "shuffle goes through the filesystem"
        );
    }

    #[test]
    fn empty_inputs() {
        let s = session();
        let (out, _) = map_reduce(
            &s,
            Vec::<u32>::new(),
            |x: u32| vec![(x, 1u64)],
            2,
            |a, b| a + b,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_reducer_preserves_first_appearance_order() {
        let s = session();
        let (out, _) = map_reduce(
            &s,
            vec![vec![5u32, 1, 5]],
            |doc: Vec<u32>| doc.into_iter().map(|w| (w, 1u64)).collect(),
            1,
            |a, b| a + b,
        )
        .unwrap();
        assert_eq!(out, vec![(5, 2), (1, 1)]);
    }
}
