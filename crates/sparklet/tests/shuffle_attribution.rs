//! Regression test for shuffle locality attribution.
//!
//! The shuffle layer used to place map output `p` on core `p % cores` for
//! *both* endpoints of every fetch. The greedy scheduler routinely puts
//! partitions elsewhere (any skewed stage re-uses the early-freed cores),
//! so same-node transfers were charged at cross-node cost and vice versa.
//! Shuffle time must be computed from the cores the map tasks actually ran
//! on and the cores the reducers will run on.

use netsim::Cluster;
use sparklet::{Rdd, SparkContext};
use taskframe::spark_profile;

/// Per-map-partition compute charges, chosen so the greedy scheduler's
/// placement diverges from the `p % cores` formula: partition 4 is released
/// last and lands on core 2 (earliest-free), not core 0.
const CHARGES: [f64; 5] = [100.0, 50.0, 1.0, 2.0, 0.5];

#[test]
fn shuffle_cost_uses_actual_task_placement() {
    // 2 nodes × 2 cores: cores {0,1} on node 0, cores {2,3} on node 1.
    let cluster = Cluster::builder().nodes(2).cores_per_node(2).build();
    let net = cluster.profile.network;

    let sc = SparkContext::new(cluster);
    let rdd = Rdd::from_partitions(sc.clone(), CHARGES.len(), |p, tctx| {
        tctx.charge(CHARGES[p]);
        vec![(0u32, 1u32)] // one 8-byte record per map partition
    });
    let n = rdd.reduce_by_key(1, |a, b| a + b).count();
    assert_eq!(n, 1);
    let report = sc.report();

    // Greedy placement with the charges above: tasks 0-3 take cores 0-3 in
    // release order, task 4 lands on core 2 (free at ~1.1s, earliest). The
    // single reducer runs on core 0 (all cores idle at the barrier, lowest
    // id first). The stale `p % 4` formula would put partition 4's output
    // on core 0 — same node as the reducer instead of remote.
    let spark = spark_profile();
    let fetch =
        |same: bool| net.transfer_time(8, same) + spark.per_transfer_overhead_s + spark.ser_time(8);
    let actual_map_nodes = [0usize, 0, 1, 1, 1];
    let formula_map_nodes = [0usize, 0, 1, 1, 0];
    let expected: f64 = actual_map_nodes.iter().map(|&node| fetch(node == 0)).sum();
    let stale: f64 = formula_map_nodes.iter().map(|&node| fetch(node == 0)).sum();

    let got = report
        .phase_total("shuffle")
        .expect("shuffle phase recorded");
    assert!(
        (got - expected).abs() < 1e-9,
        "shuffle time {got} != expected {expected} from actual placement"
    );
    assert!(
        (got - stale).abs() > 1e-6,
        "shuffle time {got} indistinguishable from the stale formula {stale}"
    );
}
