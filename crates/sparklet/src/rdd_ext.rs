//! Additional RDD operators: `union`, `zip_with_index`, `distinct`,
//! `sort_by`, and pair-RDD `join` — the rest of the RDD API surface a
//! PySpark port of the paper's scripts touches.

use crate::context::JobState;
use crate::rdd::Rdd;

use std::hash::Hash;
use std::sync::Arc;
use taskframe::{Payload, TaskCtx};

impl<T> Rdd<T>
where
    T: Payload + Clone + Send + Sync + 'static,
{
    /// Concatenate two RDDs: the result has the partitions of both,
    /// side by side (a narrow transformation — no shuffle).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        let left = self.clone();
        let right = other.clone();
        let split = left.n_partitions();
        let total = split + right.n_partitions();
        let prepare_left = left.clone();
        let prepare_right = right.clone();
        let ctx = self.context().clone();
        let depth = left.depth().max(right.depth());
        Rdd::assemble(
            ctx,
            total,
            Arc::new(move |state: &mut JobState| {
                // Both parents' upstream stages must be ready; their ready
                // vectors concatenate in partition order.
                let mut ready = prepare_left.stage_ready_public(state)?;
                ready.extend(prepare_right.stage_ready_public(state)?);
                Ok(ready)
            }),
            Arc::new(move |p, tctx: &TaskCtx| {
                if p < split {
                    left.partition_input_public(p, tctx)
                } else {
                    right.partition_input_public(p - split, tctx)
                }
            }),
            depth,
        )
    }

    /// Tag every element with its global index (partition-major order).
    /// Spark runs a lightweight count pass first; here partition sizes are
    /// computed inside the fused pipeline.
    pub fn zip_with_index(&self) -> Rdd<(T, u64)> {
        // Two-phase like Spark: a count job determines per-partition
        // offsets, then the map tags elements.
        let counts: Vec<u64> = {
            let mut st = self.context().inner.state.lock();
            self.run_stage(&mut st)
                .expect("zip_with_index count job failed")
                .iter()
                .map(|p| p.len() as u64)
                .collect()
        };
        let mut offsets = Vec::with_capacity(counts.len());
        let mut acc = 0u64;
        for c in counts {
            offsets.push(acc);
            acc += c;
        }
        let parent = self.clone();
        let offsets = Arc::new(offsets);
        let prepare_parent = self.clone();
        let depth = self.depth();
        Rdd::assemble(
            self.context().clone(),
            self.n_partitions(),
            Arc::new(move |state: &mut JobState| prepare_parent.stage_ready_public(state)),
            Arc::new(move |p, tctx: &TaskCtx| {
                parent
                    .partition_input_public(p, tctx)
                    .into_iter()
                    .enumerate()
                    .map(|(i, x)| (x, offsets[p] + i as u64))
                    .collect()
            }),
            depth,
        )
    }
}

impl<T> Rdd<T>
where
    T: Payload + Clone + Send + Sync + Eq + Hash + 'static,
{
    /// Remove duplicates (a shuffle: elements are hash-partitioned so
    /// equal values land in the same reducer).
    pub fn distinct(&self, n_out: usize) -> Rdd<T> {
        self.map(|x| (x, ()))
            .reduce_by_key(n_out, |_, _| ())
            .map(|(x, ())| x)
    }
}

impl<T> Rdd<T>
where
    T: Payload + Clone + Send + Sync + 'static,
{
    /// Globally sort by a key function (shuffle into ordered range
    /// partitions is approximated by a single-reducer sort for clarity —
    /// `n_out` reducers each sort locally, and `collect` preserves reducer
    /// order, so keys are globally ordered when `n_out == 1`).
    pub fn sort_by<K>(&self, key: impl Fn(&T) -> K + Send + Sync + 'static) -> Rdd<T>
    where
        K: Ord + Payload + Clone + Send + Sync + Eq + Hash + 'static,
    {
        let keyed = self.map(move |x| {
            let k = key(&x);
            (k, x)
        });
        let grouped = keyed.group_by_key(1);
        grouped.map_partitions(|mut groups: Vec<(K, Vec<T>)>| {
            groups.sort_by(|a, b| a.0.cmp(&b.0));
            groups.into_iter().flat_map(|(_, vs)| vs).collect()
        })
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Payload + Clone + Send + Sync + Eq + Hash + 'static,
    V: Payload + Clone + Send + Sync + 'static,
{
    /// Inner join with another pair RDD (co-grouped shuffle).
    pub fn join<W>(&self, other: &Rdd<(K, W)>, n_out: usize) -> Rdd<(K, (V, W))>
    where
        W: Payload + Clone + Send + Sync + 'static,
    {
        // Tag sides, union, group, emit the cross product per key.
        let left = self.map(|(k, v)| (k, (Some(v), None::<W>)));
        let right = other.map(|(k, w)| (k, (None::<V>, Some(w))));
        left.union(&right)
            .group_by_key(n_out)
            .flat_map(|(k, pairs)| {
                let mut vs = Vec::new();
                let mut ws = Vec::new();
                for (v, w) in pairs {
                    if let Some(v) = v {
                        vs.push(v);
                    }
                    if let Some(w) = w {
                        ws.push(w);
                    }
                }
                let mut out = Vec::with_capacity(vs.len() * ws.len());
                for v in &vs {
                    for w in &ws {
                        out.push((k.clone(), (v.clone(), w.clone())));
                    }
                }
                out
            })
    }
}

#[cfg(test)]
mod tests {
    use crate::SparkContext;
    use netsim::{laptop, Cluster};

    fn ctx() -> SparkContext {
        SparkContext::new(Cluster::new(laptop(), 2))
    }

    #[test]
    fn union_concatenates() {
        let sc = ctx();
        let a = sc.parallelize(vec![1u32, 2], 2);
        let b = sc.parallelize(vec![3u32, 4, 5], 2);
        assert_eq!(a.union(&b).collect(), vec![1, 2, 3, 4, 5]);
        assert_eq!(a.union(&b).n_partitions(), 4);
    }

    #[test]
    fn zip_with_index_is_global() {
        let sc = ctx();
        let rdd = sc.parallelize((10..20u32).collect(), 3).zip_with_index();
        let out = rdd.collect();
        for (i, (v, idx)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*v, 10 + i as u32);
        }
    }

    #[test]
    fn distinct_dedupes_across_partitions() {
        let sc = ctx();
        let mut out = sc
            .parallelize(vec![3u32, 1, 3, 2, 1, 3, 2, 2], 4)
            .distinct(2)
            .collect();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn sort_by_orders_globally() {
        let sc = ctx();
        let out = sc
            .parallelize(vec![5u32, 1, 4, 2, 3], 3)
            .sort_by(|x| *x)
            .collect();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn join_inner() {
        let sc = ctx();
        let a = sc.parallelize(vec![(1u32, 10u32), (2, 20), (1, 11)], 2);
        let b = sc.parallelize(vec![(1u32, 100u32), (3, 300)], 2);
        let mut out = a.join(&b, 2).collect();
        out.sort_unstable();
        assert_eq!(out, vec![(1, (10, 100)), (1, (11, 100))]);
    }

    #[test]
    fn union_of_transformed_lineages() {
        let sc = ctx();
        let a = sc.parallelize(vec![1u32, 2, 3], 2).map(|x| x * 10);
        let b = sc.parallelize(vec![4u32], 1).filter(|x| *x > 0);
        assert_eq!(a.union(&b).collect(), vec![10, 20, 30, 4]);
    }
}
