//! A Spark-equivalent task-parallel engine.
//!
//! `sparklet` reproduces the architectural features the paper attributes to
//! Spark 2.2 (§3.1, Table 1):
//!
//! * **RDDs with lazy lineage** — transformations (`map`, `filter`,
//!   `flat_map`, `map_partitions`) build closures over their parent and
//!   fuse into a single *stage*; nothing runs until an action.
//! * **Stage-oriented DAG scheduling** — a shuffle (`group_by_key`,
//!   `reduce_by_key`) ends a stage; the next stage starts only after every
//!   task of the previous stage finished (the synchronization barrier Dask
//!   does not have, §3.4).
//! * **Hash-partitioned shuffle** with byte-accurate volume accounting.
//! * **Broadcast variables** using a tree/torrent distribution whose cost
//!   is roughly independent of node count (Fig. 8).
//! * **In-memory caching** (`persist`) — recomputation is skipped for
//!   cached partitions, Spark's headline feature for iterative analytics.
//! * **Python↔JVM serialization tax** on task results and shuffled
//!   records, as the paper's PySpark deployments paid (§4.4.1).
//!
//! Execution is real (task closures genuinely run); time is virtual —
//! measured durations are placed onto a [`netsim::SimExecutor`].

mod context;
mod rdd;
mod rdd_ext;
mod shuffle;
mod stream;

pub use context::{Broadcast, SparkContext};
pub use rdd::Rdd;
pub use stream::DEFAULT_MICRO_BATCH;

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{laptop, Cluster};

    fn ctx() -> SparkContext {
        SparkContext::new(Cluster::new(laptop(), 2))
    }

    #[test]
    fn parallelize_collect_roundtrip() {
        let sc = ctx();
        let rdd = sc.parallelize((0..100u32).collect(), 8);
        assert_eq!(rdd.n_partitions(), 8);
        assert_eq!(rdd.collect(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn map_filter_fuse_into_one_stage() {
        let sc = ctx();
        let out = sc
            .parallelize((0..20u32).collect(), 4)
            .map(|x| x * 2)
            .filter(|x| x % 8 == 0)
            .collect();
        assert_eq!(out, vec![0, 8, 16, 24, 32]);
        // One stage: 4 tasks, no shuffle.
        let report = sc.report();
        assert_eq!(report.tasks, 4);
        assert_eq!(report.bytes_shuffled, 0);
    }

    #[test]
    fn flat_map_and_count() {
        let sc = ctx();
        let n = sc
            .parallelize(vec![1u32, 2, 3], 3)
            .flat_map(|x| vec![x; x as usize])
            .count();
        assert_eq!(n, 6);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let sc = ctx();
        let sums = sc
            .parallelize((1..=8u32).collect(), 2)
            .map_partitions(|items| vec![items.iter().sum::<u32>()])
            .collect();
        assert_eq!(sums, vec![10, 26]);
    }

    #[test]
    fn reduce_action() {
        let sc = ctx();
        let total = sc
            .parallelize((1..=10u64).collect(), 4)
            .reduce(|a, b| a + b);
        assert_eq!(total, Some(55));
        let empty = sc.parallelize(Vec::<u64>::new(), 2).reduce(|a, b| a + b);
        assert_eq!(empty, None);
    }

    #[test]
    fn group_by_key_shuffles() {
        let sc = ctx();
        let pairs: Vec<(u32, u32)> = (0..40).map(|i| (i % 4, i)).collect();
        let grouped = sc.parallelize(pairs, 8).group_by_key(4);
        let mut out = grouped.collect();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 4);
        for (k, vs) in &out {
            assert_eq!(vs.len(), 10);
            assert!(vs.iter().all(|v| v % 4 == *k));
        }
        let report = sc.report();
        assert!(report.bytes_shuffled > 0, "group_by_key must shuffle");
        assert_eq!(report.tasks, 8 + 4, "map stage + reduce stage tasks");
    }

    #[test]
    fn reduce_by_key_combines() {
        let sc = ctx();
        let pairs: Vec<(u32, u64)> = (1..=20).map(|i| (i % 2, i as u64)).collect();
        let mut out = sc
            .parallelize(pairs, 5)
            .reduce_by_key(2, |a, b| a + b)
            .collect();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out, vec![(0, 110), (1, 100)]);
    }

    #[test]
    fn stages_barrier_in_virtual_time() {
        // The reduce stage must start after the *last* map task ends.
        let sc = ctx();
        let pairs: Vec<(u32, u32)> = (0..16).map(|i| (i % 2, i)).collect();
        sc.parallelize(pairs, 4).group_by_key(2).collect();
        let report = sc.report();
        // With barrier semantics the makespan is at least two sequential
        // task rounds plus startup.
        assert!(report.makespan_s > 1.0, "startup (1s) should be included");
        assert_eq!(report.tasks, 6);
    }

    #[test]
    fn persist_skips_recompute() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let sc = ctx();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let rdd = sc
            .parallelize((0..12u32).collect(), 3)
            .map(move |x| {
                h.fetch_add(1, Ordering::Relaxed);
                x + 1
            })
            .persist();
        let a = rdd.collect();
        let b = rdd.collect();
        assert_eq!(a, b);
        assert_eq!(
            hits.load(Ordering::Relaxed),
            12,
            "second action served from cache"
        );
    }

    #[test]
    fn unpersisted_lineage_recomputes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let sc = ctx();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let rdd = sc.parallelize((0..12u32).collect(), 3).map(move |x| {
            h.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        rdd.collect();
        rdd.collect();
        assert_eq!(
            hits.load(Ordering::Relaxed),
            24,
            "lineage recomputed per action"
        );
    }

    #[test]
    fn broadcast_is_shared_and_charged() {
        let sc = ctx();
        let table = sc.broadcast(vec![10u32, 20, 30]).expect("fits in memory");
        let rdd = sc.parallelize(vec![0usize, 1, 2, 1], 2);
        let t = table.clone();
        let out = rdd.map(move |i| t.value()[i]).collect();
        assert_eq!(out, vec![10, 20, 30, 20]);
        let report = sc.report();
        assert!(report.bytes_broadcast > 0);
        assert!(report.phase_duration("broadcast").is_some());
    }

    #[test]
    fn broadcast_larger_than_node_memory_fails() {
        // 1 KiB nodes
        let sc = SparkContext::new(Cluster::builder().nodes(2).mem_budget(1024).build());
        let msg = match sc.broadcast(vec![0u64; 1024]) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("8 KiB broadcast must not fit in 1 KiB nodes"),
        };
        assert!(msg.contains("out of memory"), "{msg}");
    }

    #[test]
    fn more_cores_shrink_virtual_makespan() {
        let run = |cores: usize| {
            let sc = SparkContext::new(Cluster::builder().cores_per_node(cores).build());
            sc.parallelize((0..64u64).collect(), 64)
                .map(|x| {
                    // ~0.2ms of real work per task
                    let mut acc = x;
                    for i in 0..20_000 {
                        acc = acc.wrapping_mul(31).wrapping_add(i);
                    }
                    acc
                })
                .collect();
            sc.report().makespan_s
        };
        let t4 = run(4);
        let t16 = run(16);
        assert!(
            t16 < t4,
            "16 cores should beat 4 in virtual time: t4={t4} t16={t16}"
        );
    }

    #[test]
    fn eviction_under_memory_pressure_recomputes_identically() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        // Nodes barely big enough for one copy of the dataset: caching a
        // second persisted RDD must LRU-evict the first, and re-collecting
        // the first must lineage-recompute bit-identical partitions.
        // 600-byte nodes; each u64 partition ~8*items
        let sc = SparkContext::new(Cluster::builder().mem_budget(600).build());
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let a = sc
            .parallelize((0..64u64).collect(), 4)
            .map(move |x| {
                h.fetch_add(1, Ordering::Relaxed);
                x.wrapping_mul(0x9e3779b97f4a7c15)
            })
            .persist();
        let first = a.collect();
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        // A second persisted RDD of similar size forces eviction of `a`.
        let b = sc.parallelize((0..64u64).collect(), 4).persist();
        b.collect();
        let report = sc.report();
        assert!(report.bytes_evicted > 0, "pressure must evict: {report:?}");
        // Re-collecting `a` recomputes the evicted partitions — same bits.
        let second = a.collect();
        assert_eq!(first, second, "recomputed partitions are bit-identical");
        assert!(hits.load(Ordering::Relaxed) > 64, "recompute really ran");
        let report = sc.report();
        assert!(report.recomputed_partitions > 0);
        assert!(report.mem_high_water.iter().any(|&h| h > 0));
    }

    #[test]
    fn shrunk_memory_budget_spills_broadcast_to_disk() {
        // A fault plan shrinks node memory below the broadcast replica
        // size mid-run: the replica degrades to a disk-backed copy (spill)
        // instead of failing or panicking.
        let plan = netsim::FaultPlan::none().shrink_memory(1, 0.0, 128);
        let sc = SparkContext::new(
            Cluster::builder()
                .nodes(2)
                .mem_budget(4096)
                .fault_plan(plan)
                .build(),
        );
        let table = sc
            .broadcast(vec![7u64; 64])
            .expect("broadcast degrades, not fails");
        let out = sc
            .parallelize(vec![0usize, 1], 2)
            .map(move |i| table.value()[i])
            .collect();
        assert_eq!(out, vec![7, 7]);
        let report = sc.report();
        assert!(report.bytes_spilled > 0, "shrunk node spills: {report:?}");
        assert_eq!(report.oom_kills, 0);
    }

    #[test]
    fn empty_rdd_works() {
        let sc = ctx();
        let rdd = sc.parallelize(Vec::<u32>::new(), 4);
        assert_eq!(rdd.collect(), Vec::<u32>::new());
        assert_eq!(rdd.count(), 0);
    }
}

mod bag_engine {
    //! [`taskframe::BagEngine`] adapter: the Fig. 2/3 throughput harness
    //! runs one RDD with one partition per task, as the paper did ("we
    //! created an RDD with as many partitions as the number of tasks").

    use crate::SparkContext;
    use std::sync::Arc;
    use taskframe::{BagEngine, BagTask, EngineError};

    impl BagEngine for SparkContext {
        fn name(&self) -> &'static str {
            "spark"
        }

        fn run_bag(
            &mut self,
            tasks: Vec<BagTask>,
        ) -> Result<(Vec<u64>, netsim::SimReport), EngineError> {
            if tasks.is_empty() {
                return Ok((Vec::new(), self.report()));
            }
            let n = tasks.len();
            let tasks = Arc::new(tasks);
            let rdd =
                crate::Rdd::from_partitions(self.clone(), n, move |p, ctx| vec![tasks[p](ctx)]);
            let out = rdd.collect();
            Ok((out, self.report()))
        }
    }
}

#[cfg(test)]
mod speculation_tests {
    use super::*;
    use netsim::{laptop, Cluster};

    /// One straggler charging 100 virtual seconds among uniform 1-second
    /// tasks: speculation caps the stage near the healthy duration.
    fn straggler_makespan(speculate: bool) -> f64 {
        let sc = SparkContext::new(Cluster::builder().cores_per_node(8).build());
        if speculate {
            sc.enable_speculation(1.5);
        }
        let rdd = Rdd::from_partitions(sc.clone(), 8, |p, ctx: &taskframe::TaskCtx| {
            ctx.charge(if p == 3 { 100.0 } else { 1.0 });
            vec![p as u32]
        });
        rdd.collect();
        sc.report().makespan_s
    }

    #[test]
    fn speculation_caps_stragglers() {
        let without = straggler_makespan(false);
        let with = straggler_makespan(true);
        assert!(without > 100.0, "straggler dominates: {without}");
        assert!(with < 5.0, "speculation recovers the stage: {with}");
    }

    #[test]
    fn speculation_keeps_results_identical() {
        let sc = SparkContext::new(Cluster::new(laptop(), 1));
        sc.enable_speculation(2.0);
        let out = sc
            .parallelize((0..32u32).collect(), 8)
            .map(|x| x * 3)
            .collect();
        assert_eq!(out, (0..32).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn speculation_threshold_must_exceed_one() {
        let sc = SparkContext::new(Cluster::new(laptop(), 1));
        sc.enable_speculation(0.9);
    }
}
