//! Wide (shuffle) transformations on key-value RDDs.
//!
//! A shuffle ends the current stage: the parent's map tasks all run
//! (barrier), their outputs are hash-partitioned into `n_out` buckets,
//! every map-partition→reduce-partition transfer is charged against the
//! network model, and the next stage's tasks become ready only after their
//! inbound fetches complete. Shuffle output is kept (Spark writes shuffle
//! files to disk, §3.1: "it allows quick access to those data"), so
//! repeated actions do not re-shuffle.

use crate::context::JobState;
use crate::rdd::Rdd;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use taskframe::{EngineError, Payload};

/// Deterministic hash partitioner (SipHash with fixed keys, like Spark's
/// default `hashCode % numPartitions`).
pub(crate) fn bucket_of<K: Hash>(key: &K, n_out: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n_out as u64) as usize
}

type Buckets<K, V> = Arc<Mutex<Option<Vec<Vec<(K, V)>>>>>;

impl<K, V> Rdd<(K, V)>
where
    K: Payload + Clone + Send + Sync + Eq + Hash + 'static,
    V: Payload + Clone + Send + Sync + 'static,
{
    /// Group values by key into `n_out` reduce partitions (full shuffle of
    /// every record).
    pub fn group_by_key(&self, n_out: usize) -> Rdd<(K, Vec<V>)> {
        let depth = self.depth() + 1;
        let (store, ctx, prepare) = self.shuffle_machinery(n_out, |part| part);
        Rdd::shuffled(ctx, n_out, depth, prepare, move |q, _tctx| {
            let guard = store.lock();
            let bucket = &guard.as_ref().expect("shuffle materialized")[q];
            // Group preserving first-appearance order (deterministic).
            let mut order: Vec<K> = Vec::new();
            let mut groups: HashMap<K, Vec<V>> = HashMap::new();
            for (k, v) in bucket {
                groups
                    .entry(k.clone())
                    .or_insert_with(|| {
                        order.push(k.clone());
                        Vec::new()
                    })
                    .push(v.clone());
            }
            order
                .into_iter()
                .map(|k| {
                    let vs = groups.remove(&k).expect("key present");
                    (k, vs)
                })
                .collect()
        })
    }

    /// Combine values per key with map-side combining (Spark's
    /// `reduceByKey`): each map partition pre-reduces locally, shrinking
    /// the shuffled volume.
    pub fn reduce_by_key(
        &self,
        n_out: usize,
        f: impl Fn(V, V) -> V + Send + Sync + Clone + 'static,
    ) -> Rdd<(K, V)> {
        let combine = {
            let f = f.clone();
            move |part: Vec<(K, V)>| -> Vec<(K, V)> { combine_by_key(part, &f) }
        };
        let depth = self.depth() + 1;
        let (store, ctx, prepare) = self.shuffle_machinery(n_out, combine);
        Rdd::shuffled(ctx, n_out, depth, prepare, move |q, _tctx| {
            let guard = store.lock();
            let bucket = guard.as_ref().expect("shuffle materialized")[q].clone();
            combine_by_key(bucket, &f)
        })
    }

    /// Shared shuffle plumbing: returns the bucket store, the context, and
    /// the prepare closure that runs the map stage + shuffle exactly once.
    #[allow(clippy::type_complexity)]
    fn shuffle_machinery(
        &self,
        n_out: usize,
        map_side: impl Fn(Vec<(K, V)>) -> Vec<(K, V)> + Send + Sync + 'static,
    ) -> (Buckets<K, V>, crate::SparkContext, crate::rdd::Prepare) {
        assert!(n_out >= 1, "need at least one reduce partition");
        let parent = self.clone();
        let ctx = self.context().clone();
        let store: Buckets<K, V> = Arc::new(Mutex::new(None));
        let prepare_store = Arc::clone(&store);
        let cluster = ctx.inner.cluster.clone();
        let profile = ctx.inner.profile.clone();
        let prepare = Arc::new(
            move |state: &mut JobState| -> Result<Vec<f64>, EngineError> {
                let mut guard = prepare_store.lock();
                if guard.is_some() {
                    // Shuffle files already on disk: reducers are ready now.
                    return Ok(vec![state.frontier; n_out]);
                }
                let parts = parent.run_stage(state)?;
                let n_map = parts.len();
                let map_end = state.frontier;
                let total_cores = cluster.total_cores();
                // Map outputs live on the core each map task actually ran on
                // (run_stage records placements; a cached parent skips
                // placement, hence the length guard).
                let map_cores: Vec<usize> = if state.last_stage_cores.len() == n_map {
                    state.last_stage_cores.clone()
                } else {
                    (0..n_map).map(|p| p % total_cores).collect()
                };
                let map_durs: Vec<f64> = if state.last_stage_durs.len() == n_map {
                    state.last_stage_durs.clone()
                } else {
                    vec![0.0; n_map]
                };
                // The stage barrier drains every surviving core by `map_end`,
                // so reducer q lands on the q-th free core in id order.
                let reduce_nodes: Vec<usize> = (0..n_out)
                    .map(|q| cluster.node_of_core(state.exec.nth_free_core(map_end, q)))
                    .collect();
                // Hash-partition, tracking per (map, reduce) byte volumes.
                let mut buckets: Vec<Vec<(K, V)>> = (0..n_out).map(|_| Vec::new()).collect();
                let mut bytes_pq = vec![vec![0u64; n_out]; n_map];
                for (p, part) in parts.into_iter().enumerate() {
                    for kv in map_side(part) {
                        let q = bucket_of(&kv.0, n_out);
                        bytes_pq[p][q] += kv.wire_bytes();
                        buckets[q].push(kv);
                    }
                }
                let net = cluster.profile.network;
                let faults = cluster.faults().clone();
                let mut map_node: Vec<usize> =
                    map_cores.iter().map(|&c| cluster.node_of_core(c)).collect();
                let cost_once = |b: u64, same: bool| {
                    net.transfer_time(b, same)
                        + profile.per_transfer_overhead_s
                        + profile.ser_time(b)
                };
                // Nominal (fault-free) fetch schedule bounds the window during
                // which every map output must stay reachable.
                let mut nominal_max = 0.0f64;
                for q in 0..n_out {
                    let mut fetch = 0.0;
                    for (p, row) in bytes_pq.iter().enumerate() {
                        if row[q] > 0 {
                            fetch += cost_once(row[q], map_node[p] == reduce_nodes[q]);
                        }
                    }
                    nominal_max = nominal_max.max(fetch);
                }
                let horizon = map_end + nominal_max;
                // Lineage recovery: a map output whose node dies before the
                // fetches complete is recomputed on a surviving core, and its
                // slice becomes available only when the rerun finishes. The
                // recompute replays every un-checkpointed upstream stage for
                // that partition — `RDD::checkpoint()` truncates this to one.
                let replays = parent.lineage_depth().max(1);
                let policy = state.policy;
                let mut avail = vec![map_end; n_map];
                for p in 0..n_map {
                    let Some(died_at) = faults.node_death(map_node[p]) else {
                        continue;
                    };
                    if died_at >= horizon || bytes_pq[p].iter().all(|&b| b == 0) {
                        continue;
                    }
                    // Reducers discover the loss when their fetch fails.
                    let detect = died_at.max(map_end);
                    let prev_label = state.exec.task_label().to_string();
                    state.exec.set_task_label("recompute");
                    let placement = state.exec.run_task_policied(
                        detect + profile.central_dispatch_s,
                        map_durs[p] * replays as f64,
                        &policy,
                    )?;
                    state.exec.set_task_label(&prev_label);
                    map_node[p] = cluster.node_of_core(placement.core);
                    avail[p] = placement.end;
                    let rep = state.exec.report_mut();
                    rep.retries += 1;
                    rep.recomputed_partitions += replays;
                    rep.overhead_s += profile.central_dispatch_s + profile.worker_overhead_s;
                    rep.push_phase("recovery", detect, placement.end);
                }
                // Each reducer fetches its slice from every map output; a
                // fetch lost on the wire is paid for and re-sent (the bytes
                // count once — it is the same logical data).
                let mut ready = vec![map_end; n_out];
                let mut total_bytes = 0u64;
                let mut max_fetch = 0.0f64;
                let mut shuffle_end = map_end;
                let mut resent = 0usize;
                // Transient per-reducer shuffle buffers, released once the
                // fetched data is handed to the reduce tasks.
                let mut reservations: Vec<(usize, u64)> = Vec::new();
                for (q, r) in ready.iter_mut().enumerate() {
                    // The reducer starts fetching once every contributing map
                    // output is available, then pulls slices sequentially.
                    let mut start = map_end;
                    for (p, row) in bytes_pq.iter().enumerate() {
                        if row[q] > 0 {
                            start = start.max(avail[p]);
                        }
                    }
                    // Reserve the reducer's inbound buffer on its node;
                    // whatever the budget cannot hold (even after LRU
                    // eviction of cached partitions) spills to local disk
                    // — one write as slices arrive, one read back for the
                    // reduce — delaying this reducer by the disk time.
                    let node = reduce_nodes[q];
                    let inbound: u64 = bytes_pq.iter().map(|row| row[q]).sum();
                    let mut spilled = 0u64;
                    if inbound > 0 {
                        if state.reserve_or_evict(node, inbound) {
                            reservations.push((node, inbound));
                        } else {
                            let budget = state.exec.mem_budget(node, start);
                            let free = budget.saturating_sub(state.exec.mem_resident(node));
                            let reserved = free.min(inbound);
                            if reserved > 0 {
                                state.exec.force_reserve_memory(node, reserved);
                                reservations.push((node, reserved));
                            }
                            spilled = inbound - reserved;
                        }
                    }
                    let mut fetch = 0.0;
                    for (p, row) in bytes_pq.iter().enumerate() {
                        let b = row[q];
                        if b > 0 {
                            let (from, to) = (map_node[p], reduce_nodes[q]);
                            // A fetch cannot cross an active cut: it waits
                            // out the partition before going on the wire.
                            if faults.has_partitions() {
                                let at = faults.earliest_reach(from, to, start + fetch);
                                if at > start + fetch {
                                    fetch = at - start;
                                }
                            }
                            let base = cost_once(b, from == to);
                            let mut attempt = 0;
                            loop {
                                let t0 = start + fetch;
                                // Scripted link degradation inflates the
                                // wire time and adds its own loss coin on
                                // top of the plan-wide fetch-loss one.
                                let once = base * faults.link_latency_factor(from, to, t0);
                                if faults.fetch_lost(p, q, attempt)
                                    || faults.link_lost(from, to, attempt, t0)
                                {
                                    state.exec.record_fetch_lost(from, to, b, t0, t0 + once);
                                    fetch += once;
                                    resent += 1;
                                    attempt += 1;
                                } else {
                                    state.exec.record_fetch(from, to, b, t0, t0 + once);
                                    fetch += once;
                                    total_bytes += b;
                                    break;
                                }
                            }
                        }
                    }
                    if spilled > 0 {
                        let dt = 2.0 * cluster.profile.disk_time(spilled);
                        state
                            .exec
                            .record_spill(node, spilled, start + fetch, start + fetch + dt);
                        fetch += dt;
                    }
                    *r = start + fetch;
                    max_fetch = max_fetch.max(fetch);
                    shuffle_end = shuffle_end.max(*r);
                }
                for (node, bytes) in reservations {
                    state.exec.release_memory(node, bytes);
                }
                let rep = state.exec.report_mut();
                rep.retries += resent;
                rep.bytes_shuffled += total_bytes;
                rep.comm_s += max_fetch;
                rep.push_phase("shuffle", map_end, shuffle_end);
                *guard = Some(buckets);
                Ok(ready)
            },
        );
        (store, ctx, prepare)
    }
}

/// Fold values by key, preserving first-appearance key order.
fn combine_by_key<K, V>(part: Vec<(K, V)>, f: &impl Fn(V, V) -> V) -> Vec<(K, V)>
where
    K: Eq + Hash + Clone,
{
    let mut order: Vec<K> = Vec::new();
    let mut acc: HashMap<K, V> = HashMap::new();
    for (k, v) in part {
        match acc.remove(&k) {
            Some(prev) => {
                acc.insert(k, f(prev, v));
            }
            None => {
                order.push(k.clone());
                acc.insert(k, v);
            }
        }
    }
    order
        .into_iter()
        .map(|k| {
            let v = acc.remove(&k).expect("key present");
            (k, v)
        })
        .collect()
}

impl<T> Rdd<T>
where
    T: Payload + Clone + Send + Sync + 'static,
{
    /// Internal constructor for shuffle outputs. `depth` is the lineage
    /// depth of the shuffled RDD (parent's depth + 1 for the shuffle).
    pub(crate) fn shuffled(
        ctx: crate::SparkContext,
        n_partitions: usize,
        depth: usize,
        prepare: crate::rdd::Prepare,
        compute: impl Fn(usize, &taskframe::TaskCtx) -> Vec<T> + Send + Sync + 'static,
    ) -> Self {
        Rdd::assemble(ctx, n_partitions, prepare, Arc::new(compute), depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_deterministic_and_in_range() {
        for n in 1..8usize {
            for k in 0..100u32 {
                let b = bucket_of(&k, n);
                assert!(b < n);
                assert_eq!(b, bucket_of(&k, n));
            }
        }
    }

    #[test]
    fn combine_by_key_folds_in_order() {
        let out = combine_by_key(
            vec![("b", 1), ("a", 2), ("b", 3), ("a", 4)],
            &|x: i32, y: i32| x + y,
        );
        assert_eq!(out, vec![("b", 4), ("a", 6)]);
    }
}
