//! Micro-batched streaming on the Spark driver — the Spark-Streaming
//! posture: buffer incoming frames, dispatch each batch as one stage.

use netsim::stream::{run_stream, DispatchMode, SourceLog, StreamJob, StreamRun};
use taskframe::EngineError;

use crate::SparkContext;

/// Frames per micro-batch when the caller does not say otherwise —
/// roughly one stage per window at the default bench cadence.
pub const DEFAULT_MICRO_BATCH: usize = 4;

impl SparkContext {
    /// Run an event-time windowed streaming job over a delivery schedule.
    ///
    /// Frames are micro-batched: `batch` frames buffer on the driver and
    /// dispatch as one stage (one scheduling overhead per batch, tasks in
    /// parallel). Window close, watermarks, late-frame disposition,
    /// backpressure, and per-window lineage replay follow
    /// [`netsim::stream::run_stream`]; the retry policy is the context's
    /// ([`SparkContext::set_retry_policy`]).
    pub fn run_stream(
        &self,
        source: &SourceLog,
        job: &StreamJob,
        batch: usize,
        frame_value: &mut dyn FnMut(usize) -> u64,
    ) -> Result<StreamRun, EngineError> {
        let overhead = self.inner.profile.central_dispatch_s + self.inner.profile.worker_overhead_s;
        let spec = job.spec(DispatchMode::MicroBatch(batch.max(1)), overhead);
        let mut st = self.inner.state.lock();
        let policy = st.policy;
        st.exec.set_phase("stream");
        let output = run_stream(&mut st.exec, source, &spec, &policy, frame_value)
            .map_err(EngineError::from)?;
        st.frontier = st.frontier.max(st.exec.all_idle_at());
        let mut report = st.exec.report().clone();
        report.makespan_s = report.makespan_s.max(st.frontier);
        Ok(StreamRun { output, report })
    }
}
