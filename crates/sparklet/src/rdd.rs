//! Resilient Distributed Datasets: lazy lineage, stages, actions.

use crate::context::{JobState, SparkContext};
use netsim::measure;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use taskframe::{EngineError, Payload, TaskCtx};

type Compute<T> = Arc<dyn Fn(usize, &TaskCtx) -> Vec<T> + Send + Sync>;
pub(crate) type Prepare = Arc<dyn Fn(&mut JobState) -> Result<Vec<f64>, EngineError> + Send + Sync>;

/// A distributed collection with lazy lineage.
///
/// Narrow transformations (`map`, `filter`, `flat_map`, `map_partitions`)
/// fuse into their parent's stage: the child's per-partition compute
/// closure invokes the parent's inline, so one task executes the whole
/// fused pipeline — exactly Spark's stage fusion. Wide transformations
/// (`group_by_key`, `reduce_by_key`) cut a stage boundary and shuffle.
pub struct Rdd<T> {
    ctx: SparkContext,
    n_partitions: usize,
    /// Runs any upstream stages (shuffles) and returns per-partition ready
    /// times for this stage's tasks.
    prepare: Prepare,
    compute: Compute<T>,
    /// Filled on first materialization iff `persisted` — one slot per
    /// partition (empty vec = never materialized), so the block manager
    /// can evict individual partitions under memory pressure; an evicted
    /// slot is `None` until lineage recomputes it.
    cache: Arc<Mutex<Vec<Option<Vec<T>>>>>,
    persisted: bool,
    /// Checkpointed RDDs write their partitions to replicated stable
    /// storage on first materialization; from then on lineage recovery
    /// restarts here instead of replaying upstream stages.
    checkpointed: bool,
    /// Whether the checkpoint write has happened (survives cache eviction
    /// — stable storage is not memory).
    ckpt_written: Arc<AtomicBool>,
    /// Static lineage depth in *stages* back to the nearest durable input
    /// (source data or a checkpoint). Narrow transforms fuse, so they do
    /// not deepen it; every shuffle adds one.
    depth: usize,
}

impl<T> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            ctx: self.ctx.clone(),
            n_partitions: self.n_partitions,
            prepare: Arc::clone(&self.prepare),
            compute: Arc::clone(&self.compute),
            cache: Arc::clone(&self.cache),
            persisted: self.persisted,
            checkpointed: self.checkpointed,
            ckpt_written: Arc::clone(&self.ckpt_written),
            depth: self.depth,
        }
    }
}

impl<T> Rdd<T>
where
    T: Payload + Clone + Send + Sync + 'static,
{
    pub(crate) fn parallelize(ctx: SparkContext, data: Vec<T>, n_partitions: usize) -> Self {
        assert!(n_partitions >= 1, "need at least one partition");
        let chunks = split_evenly(data, n_partitions);
        let chunks = Arc::new(chunks);
        Rdd {
            ctx,
            n_partitions,
            prepare: Arc::new(|state: &mut JobState| Ok(vec![state.frontier; 0])),
            compute: Arc::new(move |p, _ctx| chunks[p].clone()),
            cache: Arc::new(Mutex::new(Vec::new())),
            persisted: false,
            checkpointed: false,
            ckpt_written: Arc::new(AtomicBool::new(false)),
            depth: 1,
        }
    }

    /// Construct from explicit per-partition compute (used by shuffles and
    /// by `mdtask-core` to create one task per pre-partitioned data block).
    pub fn from_partitions(
        ctx: SparkContext,
        n_partitions: usize,
        compute: impl Fn(usize, &TaskCtx) -> Vec<T> + Send + Sync + 'static,
    ) -> Self {
        assert!(n_partitions >= 1, "need at least one partition");
        Rdd {
            ctx,
            n_partitions,
            prepare: Arc::new(|state: &mut JobState| Ok(vec![state.frontier; 0])),
            compute: Arc::new(compute),
            cache: Arc::new(Mutex::new(Vec::new())),
            persisted: false,
            checkpointed: false,
            ckpt_written: Arc::new(AtomicBool::new(false)),
            depth: 1,
        }
    }

    /// Internal all-fields constructor (shuffle outputs use it).
    pub(crate) fn assemble(
        ctx: SparkContext,
        n_partitions: usize,
        prepare: Prepare,
        compute: Compute<T>,
        depth: usize,
    ) -> Self {
        Rdd {
            ctx,
            n_partitions,
            prepare,
            compute,
            cache: Arc::new(Mutex::new(Vec::new())),
            persisted: false,
            checkpointed: false,
            ckpt_written: Arc::new(AtomicBool::new(false)),
            depth,
        }
    }

    pub fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    pub fn context(&self) -> &SparkContext {
        &self.ctx
    }

    /// Mark for in-memory caching: the first action materializes, later
    /// actions reuse.
    pub fn persist(&self) -> Self {
        let mut c = self.clone();
        c.persisted = true;
        c
    }

    /// Mark for checkpointing (Spark's `RDD.checkpoint()`): the first
    /// materialization also writes every partition to replicated stable
    /// storage (charged as a `checkpoint` phase), and from then on this
    /// RDD's lineage is *truncated* — a lost downstream partition replays
    /// at most one stage instead of the whole upstream chain.
    pub fn checkpoint(&self) -> Self {
        let mut c = self.clone();
        c.persisted = true;
        c.checkpointed = true;
        c
    }

    /// Stages a lineage recompute must replay to rebuild one partition of
    /// this RDD: 1 once a checkpoint is materialized, the full static
    /// lineage depth otherwise.
    pub fn lineage_depth(&self) -> usize {
        if self.checkpointed && self.ckpt_written.load(Ordering::Relaxed) {
            1
        } else {
            self.depth
        }
    }

    /// Block-manager identity of partition `p`'s cache slot: stable across
    /// the RDD clones sharing one cache.
    fn cache_key(&self, p: usize) -> (usize, usize) {
        (Arc::as_ptr(&self.cache) as *const () as usize, p)
    }

    /// Static lineage depth (ignores any materialized checkpoint).
    pub(crate) fn depth(&self) -> usize {
        self.depth
    }

    /// Per-partition input, honouring this RDD's cache (used by fused
    /// children). A partition evicted under memory pressure is recomputed
    /// from lineage right here — inside the child's measured closure, so
    /// the recompute's cost lands on the task that needed the data, and
    /// the recomputed bits are definitionally identical (same pure
    /// closure, same input).
    fn partition_input(&self, p: usize, ctx: &TaskCtx) -> Vec<T> {
        if self.persisted {
            let cached = self.cache.lock();
            match cached.get(p) {
                Some(Some(part)) => return part.clone(),
                Some(None) => {
                    // Materialized once, evicted since: count the lineage
                    // recompute (drained into the report at the next stage
                    // boundary — the job state is locked right now).
                    self.ctx
                        .inner
                        .pending_recomputes
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                None => {}
            }
        }
        (self.compute)(p, ctx)
    }

    /// Crate-visible accessors for operator extensions (`rdd_ext`).
    pub(crate) fn stage_ready_public(&self, state: &mut JobState) -> Result<Vec<f64>, EngineError> {
        self.stage_ready(state)
    }

    pub(crate) fn partition_input_public(&self, p: usize, ctx: &TaskCtx) -> Vec<T> {
        self.partition_input(p, ctx)
    }

    /// Ready times for this RDD's stage: skip upstream work if this RDD is
    /// already fully cached.
    fn stage_ready(&self, state: &mut JobState) -> Result<Vec<f64>, EngineError> {
        if self.persisted {
            let cached = self.cache.lock();
            if !cached.is_empty() && cached.iter().all(Option::is_some) {
                return Ok(vec![state.frontier; self.n_partitions]);
            }
        }
        let r = (self.prepare)(state)?;
        Ok(if r.is_empty() {
            vec![state.frontier; self.n_partitions]
        } else {
            r
        })
    }

    /// Execute this RDD's stage: one task per partition, stage barrier at
    /// the end. Returns materialized partitions, or a typed error once the
    /// driver's [`RetryPolicy`](netsim::RetryPolicy) gives up on a task.
    pub(crate) fn run_stage(&self, state: &mut JobState) -> Result<Vec<Vec<T>>, EngineError> {
        // Cached view of this RDD: a full hit is served from memory; a
        // partial hit (some partitions evicted under memory pressure)
        // recomputes only the missing partitions from lineage.
        let mut have: Vec<Option<Vec<T>>> = Vec::new();
        let mut materialized = false;
        if self.persisted {
            let cached = self.cache.lock();
            materialized = !cached.is_empty();
            if materialized && cached.iter().all(Option::is_some) {
                let parts: Vec<Vec<T>> = cached.iter().map(|p| p.clone().unwrap()).collect();
                drop(cached);
                for p in 0..self.n_partitions {
                    state.touch_cache(self.cache_key(p));
                }
                return Ok(parts);
            }
            have = cached.clone();
        }
        if have.len() != self.n_partitions {
            have = (0..self.n_partitions).map(|_| None).collect();
        }
        let todo: Vec<usize> = (0..self.n_partitions)
            .filter(|&p| have[p].is_none())
            .collect();
        let ready = self.stage_ready(state)?;
        let profile = self.ctx.inner.profile.clone();
        let cluster = self.ctx.inner.cluster.clone();
        let dispatch_base = state.frontier;
        // Pass 1: execute every (not-cached) task for real and record its
        // measurement. Task ids are reserved up front and closures run
        // across host threads (`SimExecutor::host_threads`); the pool
        // returns results in `todo` order, so everything downstream —
        // durations, placement, caching — sees exactly the serial order.
        let base_task = state.next_task;
        state.next_task += todo.len();
        let host_threads = state.exec.host_threads();
        let measured = netsim::parallel::run_indexed_with(host_threads, todo.len(), |i| {
            let p = todo[i];
            let tctx = TaskCtx::new(base_task + i, p);
            let (out, host_s) = measure(|| (self.compute)(p, &tctx));
            (out, host_s, tctx.charged())
        });
        let mut results = Vec::with_capacity(todo.len());
        let mut durs = Vec::with_capacity(todo.len());
        for (out, host_s, charged) in measured {
            // Worker overhead is CPU work on the executing core, so it is
            // subject to the same per-core efficiency as the kernel.
            let dur = cluster.scale_compute(host_s + profile.worker_overhead_s)
                + charged
                + profile.ser_time(out.wire_bytes());
            durs.push(dur);
            results.push(out);
        }
        // Speculative execution: cap stragglers at threshold × median, as
        // if a backup attempt had been scheduled on an idle core. The same
        // cap is handed to the executor so injected straggler slowdowns
        // (fault plans) are bounded too.
        let mut spec_cap = None;
        if let Some(threshold) = state.speculation {
            let mut sorted = durs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
            let median = sorted[sorted.len() / 2];
            let cap = threshold * median + cluster.scale_compute(profile.worker_overhead_s);
            for d in &mut durs {
                if *d > cap {
                    *d = cap;
                }
            }
            spec_cap = Some(cap);
        }
        // Pass 2: place tasks on the simulated cores. An attempt killed by
        // a node death is detected via heartbeat and re-dispatched by the
        // driver (lineage makes the rerun possible) with exponential
        // backoff, up to the policy's attempt budget.
        let policy = state.policy;
        let mut stage_end = state.frontier;
        let mut cores = Vec::with_capacity(durs.len());
        for (i, &dur) in durs.iter().enumerate() {
            let p = todo[i];
            // Central dispatch: the driver releases tasks one at a time.
            let mut release =
                ready[p].max(dispatch_base + (i + 1) as f64 * profile.central_dispatch_s);
            let mut attempts: u32 = 1;
            let mut first_died: Option<f64> = None;
            let mut avoid = None;
            let placement = loop {
                let opts = netsim::TaskOpts {
                    speculation_cap: spec_cap,
                    avoid_core: avoid,
                };
                match state
                    .exec
                    .run_task_attempt_detected(release, dur, opts, &policy)?
                {
                    netsim::TaskAttempt::Done(pl) => break pl,
                    // A partitioned executor the driver's detector gave up
                    // on: the stage was re-dispatched, but the original
                    // attempt finished behind the cut. Its map output
                    // registers under a stale shuffle epoch after heal and
                    // the driver discards it — exactly once, never merged.
                    netsim::TaskAttempt::Zombie {
                        core,
                        suspected_at,
                        deliver_at,
                        ..
                    } => {
                        if attempts >= policy.max_attempts {
                            return Err(EngineError::RetriesExhausted {
                                attempts,
                                last_failure_s: suspected_at,
                            });
                        }
                        let redispatch = release.max(
                            suspected_at
                                + policy.backoff_before(attempts + 1)
                                + profile.central_dispatch_s,
                        );
                        policy.deadline_gate(suspected_at, redispatch)?;
                        attempts += 1;
                        avoid = Some(core);
                        first_died.get_or_insert(suspected_at);
                        state
                            .exec
                            .record_fenced("stale-shuffle-epoch", suspected_at, deliver_at);
                        let rep = state.exec.report_mut();
                        rep.retries += 1;
                        rep.overhead_s += profile.central_dispatch_s;
                        release = redispatch;
                    }
                    netsim::TaskAttempt::Killed { died_at, core, .. } => {
                        if attempts >= policy.max_attempts {
                            return Err(EngineError::RetriesExhausted {
                                attempts,
                                last_failure_s: died_at + policy.detection_delay_s,
                            });
                        }
                        // The heartbeat reveals the loss, the driver backs
                        // off, then re-dispatches (blacklisting the core
                        // the attempt just died on). If that re-dispatch
                        // already falls past the deadline, fail now rather
                        // than burning the backoff wait on a doomed attempt.
                        let observed = died_at + policy.detection_delay_s;
                        let redispatch = release.max(
                            observed
                                + policy.backoff_before(attempts + 1)
                                + profile.central_dispatch_s,
                        );
                        policy.deadline_gate(observed, redispatch)?;
                        attempts += 1;
                        avoid = Some(core);
                        first_died.get_or_insert(died_at);
                        let rep = state.exec.report_mut();
                        rep.retries += 1;
                        rep.overhead_s += profile.central_dispatch_s;
                        release = redispatch;
                    }
                }
            };
            if let Some(deadline) = policy.deadline_s {
                if placement.end > deadline {
                    return Err(EngineError::DeadlineExceeded {
                        deadline_s: deadline,
                        at_s: placement.start,
                    });
                }
            }
            if let Some(died_at) = first_died {
                state
                    .exec
                    .record_recovery("re-dispatch", died_at, placement.end);
                state
                    .exec
                    .report_mut()
                    .push_phase("recovery", died_at, placement.end);
            }
            cores.push(placement.core);
            stage_end = stage_end.max(placement.end);
            state.exec.report_mut().overhead_s +=
                profile.worker_overhead_s + profile.central_dispatch_s;
        }
        // Stage-oriented scheduler: nothing downstream starts earlier.
        state.frontier = stage_end;
        // Evicted-then-recomputed partitions (plus any recomputes fused
        // parents performed inside task closures) are visible recovery.
        if materialized {
            state.exec.report_mut().recomputed_partitions += todo.len();
        }
        let pending = self
            .ctx
            .inner
            .pending_recomputes
            .swap(0, std::sync::atomic::Ordering::Relaxed);
        state.exec.report_mut().recomputed_partitions += pending;
        for (i, &p) in todo.iter().enumerate() {
            have[p] = Some(std::mem::take(&mut results[i]));
        }
        if self.persisted {
            // Insert the newly computed partitions into the block
            // manager, reserving node memory where each task ran. Under
            // pressure the LRU cached partitions are evicted first; if the
            // budget still cannot hold a partition it simply stays
            // uncached (MEMORY_ONLY semantics — the next access recomputes
            // it from lineage).
            for (i, &p) in todo.iter().enumerate() {
                let part = have[p].as_ref().expect("just computed");
                let bytes = part.wire_bytes();
                let node = cluster.node_of_core(cores[i]);
                if state.reserve_or_evict(node, bytes) {
                    {
                        let mut guard = self.cache.lock();
                        if guard.len() != self.n_partitions {
                            guard.resize_with(self.n_partitions, || None);
                        }
                        guard[p] = Some(part.clone());
                    }
                    let evict_cache = Arc::clone(&self.cache);
                    state.register_cache(
                        self.cache_key(p),
                        node,
                        bytes,
                        Arc::new(move || {
                            if let Some(slot) = evict_cache.lock().get_mut(p) {
                                *slot = None;
                            }
                        }),
                    );
                }
            }
            if self.checkpointed && !self.ckpt_written.load(Ordering::Relaxed) {
                // Synchronous write of every partition to replicated
                // stable storage; downstream recovery restarts here.
                let bytes: u64 = have
                    .iter()
                    .map(|p| p.as_ref().expect("materialized").wire_bytes())
                    .sum();
                let net = self.ctx.inner.cluster.profile.network;
                let t = net.transfer_time(bytes, false) + profile.per_transfer_overhead_s;
                let start = state.frontier;
                state.frontier += t;
                let end = state.frontier;
                state.exec.advance_makespan(end);
                let rep = state.exec.report_mut();
                rep.comm_s += t;
                rep.push_phase("checkpoint", start, end);
                self.ckpt_written.store(true, Ordering::Relaxed);
            }
        }
        state.last_stage_cores = cores;
        state.last_stage_durs = durs;
        Ok(have
            .into_iter()
            .map(|p| p.expect("all partitions materialized"))
            .collect())
    }

    // ---- narrow transformations (fuse into this stage) ----

    pub fn map<U, F>(&self, f: F) -> Rdd<U>
    where
        U: Payload + Clone + Send + Sync + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        let parent = self.clone();
        self.derive(move |p, ctx| parent.partition_input(p, ctx).into_iter().map(&f).collect())
    }

    pub fn filter<F>(&self, f: F) -> Rdd<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let parent = self.clone();
        self.derive(move |p, ctx| {
            parent
                .partition_input(p, ctx)
                .into_iter()
                .filter(|x| f(x))
                .collect()
        })
    }

    pub fn flat_map<U, F, I>(&self, f: F) -> Rdd<U>
    where
        U: Payload + Clone + Send + Sync + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync + 'static,
    {
        let parent = self.clone();
        self.derive(move |p, ctx| {
            parent
                .partition_input(p, ctx)
                .into_iter()
                .flat_map(&f)
                .collect()
        })
    }

    /// Transform a whole partition at once (Spark's `mapPartitions`) — the
    /// shape the MD pipelines use for per-block kernels.
    pub fn map_partitions<U, F>(&self, f: F) -> Rdd<U>
    where
        U: Payload + Clone + Send + Sync + 'static,
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        let parent = self.clone();
        self.derive(move |p, ctx| f(parent.partition_input(p, ctx)))
    }

    fn derive<U>(
        &self,
        compute: impl Fn(usize, &TaskCtx) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U>
    where
        U: Payload + Clone + Send + Sync + 'static,
    {
        let parent = self.clone();
        Rdd {
            ctx: self.ctx.clone(),
            n_partitions: self.n_partitions,
            prepare: Arc::new(move |state| parent.stage_ready(state)),
            compute: Arc::new(compute),
            cache: Arc::new(Mutex::new(Vec::new())),
            persisted: false,
            checkpointed: false,
            ckpt_written: Arc::new(AtomicBool::new(false)),
            // Narrow transforms fuse into the parent's stage.
            depth: self.depth,
        }
    }

    // ---- actions ----

    /// Materialize and pull all partitions to the driver, surfacing
    /// recovery-policy exhaustion as a typed error.
    pub fn try_collect(&self) -> Result<Vec<T>, EngineError> {
        let mut st = self.ctx.inner.state.lock();
        let parts = self.run_stage(&mut st)?;
        // Driver gather: results stream back over the network.
        let profile = &self.ctx.inner.profile;
        let net = self.ctx.inner.cluster.profile.network;
        let mut gather = 0.0;
        for (p, part) in parts.iter().enumerate() {
            // Results come back from the core each task actually ran on
            // (cached RDDs skip placement, hence the length guard).
            let core = if st.last_stage_cores.len() == parts.len() {
                st.last_stage_cores[p]
            } else {
                p % self.ctx.inner.cluster.total_cores()
            };
            let same = self.ctx.inner.cluster.node_of_core(core) == 0;
            gather += net.transfer_time(part.wire_bytes(), same) + profile.per_transfer_overhead_s;
        }
        st.frontier += gather;
        let f = st.frontier;
        st.exec.advance_makespan(f);
        st.exec.report_mut().comm_s += gather;
        Ok(parts.into_iter().flatten().collect())
    }

    /// Materialize and pull all partitions to the driver.
    ///
    /// Panics if the job fails (use [`Self::try_collect`] under fault
    /// plans that can exhaust the retry policy).
    pub fn collect(&self) -> Vec<T> {
        self.try_collect().expect("sparklet job failed")
    }

    /// Materialize and count elements, surfacing job failure.
    pub fn try_count(&self) -> Result<usize, EngineError> {
        let mut st = self.ctx.inner.state.lock();
        let parts = self.run_stage(&mut st)?;
        st.frontier += self.ctx.inner.cluster.profile.network.latency_s;
        let f = st.frontier;
        st.exec.advance_makespan(f);
        Ok(parts.iter().map(Vec::len).sum())
    }

    /// Materialize and count elements (panics on job failure).
    pub fn count(&self) -> usize {
        self.try_count().expect("sparklet job failed")
    }

    /// Fold all elements with an associative `f` (per-partition fold, then
    /// driver-side combine of one value per partition), surfacing job
    /// failure.
    pub fn try_reduce(&self, f: impl Fn(T, T) -> T) -> Result<Option<T>, EngineError> {
        let mut st = self.ctx.inner.state.lock();
        let parts = self.run_stage(&mut st)?;
        let net = self.ctx.inner.cluster.profile.network;
        let mut gather = 0.0;
        let mut acc: Option<T> = None;
        for part in parts {
            if let Some(local) = part.into_iter().reduce(&f) {
                gather += net.transfer_time(local.wire_bytes(), false);
                acc = Some(match acc {
                    None => local,
                    Some(a) => f(a, local),
                });
            }
        }
        st.frontier += gather;
        let fr = st.frontier;
        st.exec.advance_makespan(fr);
        st.exec.report_mut().comm_s += gather;
        Ok(acc)
    }

    /// Fold all elements with an associative `f` (panics on job failure).
    pub fn reduce(&self, f: impl Fn(T, T) -> T) -> Option<T> {
        self.try_reduce(f).expect("sparklet job failed")
    }
}

/// Split a vector into `n` nearly-equal chunks (first `len % n` chunks get
/// one extra element), preserving order.
pub(crate) fn split_evenly<T>(data: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let len = data.len();
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut it = data.into_iter();
    for i in 0..n {
        let take = base + usize::from(i < extra);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::split_evenly;

    #[test]
    fn split_evenly_covers_all() {
        let parts = split_evenly((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(parts, vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
        let empty = split_evenly(Vec::<u32>::new(), 4);
        assert_eq!(empty.len(), 4);
        assert!(empty.iter().all(Vec::is_empty));
    }

    #[test]
    fn split_more_parts_than_items() {
        let parts = split_evenly(vec![1, 2], 5);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
        assert_eq!(parts.len(), 5);
    }
}
