//! Driver context: cluster handle, virtual-time state, broadcast variables.

use netsim::{broadcast_time, Cluster, RetryPolicy, SimExecutor, SimReport};
use parking_lot::Mutex;
use std::sync::Arc;
use taskframe::{spark_profile, EngineError, FrameworkProfile, Payload};

/// One cached partition registered with the driver's block manager: where
/// it lives, how big it is, when it was last used, and how to drop it.
pub(crate) struct CacheSlot {
    /// `(cache identity, partition index)` — identifies the partition
    /// across the RDD clones sharing one cache.
    pub key: (usize, usize),
    pub node: usize,
    pub bytes: u64,
    /// LRU clock value of the most recent use.
    pub seq: u64,
    /// Clears the partition from its RDD's cache (type-erased).
    pub evict: Arc<dyn Fn() + Send + Sync>,
}

pub(crate) struct JobState {
    pub exec: SimExecutor,
    /// Virtual time before which no new stage may start (stage barrier).
    pub frontier: f64,
    pub next_task: usize,
    /// Driver-side block-manager view of every cached partition, for LRU
    /// eviction under memory pressure.
    pub cache_slots: Vec<CacheSlot>,
    /// Monotonic LRU clock (bumped on every cache insert or hit).
    pub lru_clock: u64,
    /// Straggler mitigation (the paper's §6 future-work item): when set,
    /// a task running longer than `threshold × stage median` is assumed
    /// to have a speculative backup launched on another core, capping its
    /// effective duration at that bound.
    pub speculation: Option<f64>,
    /// Core each partition of the most recent stage actually ran on —
    /// the shuffle layer uses this for map-output locality instead of
    /// assuming a `p % cores` placement.
    pub last_stage_cores: Vec<usize>,
    /// Simulated duration of each task in the most recent stage; a lineage
    /// recompute of a lost map partition replays this cost.
    pub last_stage_durs: Vec<f64>,
    /// Recovery policy the driver applies to every task: bounded attempts,
    /// heartbeat detection delay, exponential re-dispatch backoff.
    pub policy: RetryPolicy,
}

impl JobState {
    /// Reserve `bytes` on `node`, LRU-evicting cached partitions on that
    /// node until the reservation fits. Returns `false` when even an empty
    /// cache leaves no room (the caller degrades further: spill, or skip
    /// caching and rely on lineage recompute).
    pub fn reserve_or_evict(&mut self, node: usize, bytes: u64) -> bool {
        loop {
            if self.exec.try_reserve_memory(node, bytes, self.frontier) {
                return true;
            }
            // Oldest cached partition on this node goes first.
            let victim = self
                .cache_slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.node == node)
                .min_by_key(|(_, s)| s.seq)
                .map(|(i, _)| i);
            let Some(i) = victim else {
                return false;
            };
            let slot = self.cache_slots.swap_remove(i);
            (slot.evict)();
            let at = self.frontier;
            self.exec.record_evict(slot.node, slot.bytes, at);
        }
    }

    /// Register a cached partition with the block manager.
    pub fn register_cache(
        &mut self,
        key: (usize, usize),
        node: usize,
        bytes: u64,
        evict: Arc<dyn Fn() + Send + Sync>,
    ) {
        self.lru_clock += 1;
        let seq = self.lru_clock;
        self.cache_slots.push(CacheSlot {
            key,
            node,
            bytes,
            seq,
            evict,
        });
    }

    /// Mark a cached partition as just used (moves it to the LRU tail).
    pub fn touch_cache(&mut self, key: (usize, usize)) {
        self.lru_clock += 1;
        let seq = self.lru_clock;
        if let Some(slot) = self.cache_slots.iter_mut().find(|s| s.key == key) {
            slot.seq = seq;
        }
    }
}

pub(crate) struct CtxInner {
    pub cluster: Cluster,
    pub profile: FrameworkProfile,
    pub state: Mutex<JobState>,
    /// Evicted-partition recomputes observed inside fused task closures
    /// (which run while the job state is locked); drained into the
    /// report's `recomputed_partitions` at the next stage boundary.
    pub pending_recomputes: std::sync::atomic::AtomicUsize,
}

/// The driver handle — equivalent of `pyspark.SparkContext`.
#[derive(Clone)]
pub struct SparkContext {
    pub(crate) inner: Arc<CtxInner>,
}

impl SparkContext {
    /// Connect a driver to a cluster (charges Spark's job startup).
    pub fn new(cluster: Cluster) -> Self {
        Self::with_profile(cluster, spark_profile())
    }

    /// Override the framework profile (used by ablation benches).
    pub fn with_profile(cluster: Cluster, profile: FrameworkProfile) -> Self {
        let mut exec = SimExecutor::new(cluster.clone());
        exec.report_mut().overhead_s += profile.startup_s;
        let startup = profile.startup_s;
        let policy = profile.retry_policy();
        exec.advance_makespan(startup);
        SparkContext {
            inner: Arc::new(CtxInner {
                cluster,
                profile,
                pending_recomputes: std::sync::atomic::AtomicUsize::new(0),
                state: Mutex::new(JobState {
                    exec,
                    frontier: startup,
                    next_task: 0,
                    cache_slots: Vec::new(),
                    lru_clock: 0,
                    speculation: None,
                    last_stage_cores: Vec::new(),
                    last_stage_durs: Vec::new(),
                    policy,
                }),
            }),
        }
    }

    /// Override the recovery policy (defaults to
    /// [`FrameworkProfile::retry_policy`]). Applies to every task dispatched
    /// after the call.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.inner.state.lock().policy = policy;
    }

    /// The recovery policy currently in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.state.lock().policy
    }

    pub fn cluster(&self) -> &Cluster {
        &self.inner.cluster
    }

    /// Distribute a dataset into `n_partitions` as an RDD.
    pub fn parallelize<T>(&self, data: Vec<T>, n_partitions: usize) -> crate::Rdd<T>
    where
        T: Payload + Clone + Send + Sync + 'static,
    {
        crate::Rdd::parallelize(self.clone(), data, n_partitions)
    }

    /// Ship a read-only value to every node once (torrent-style tree
    /// broadcast — cost grows with log of node count, Fig. 8).
    ///
    /// Fails if a per-node replica cannot fit in node memory.
    pub fn broadcast<T>(&self, value: T) -> Result<Broadcast<T>, EngineError>
    where
        T: Payload,
    {
        let bytes = value.wire_bytes();
        let items = value.item_count();
        let mem = self.inner.cluster.profile.mem_per_node;
        if bytes > mem {
            return Err(EngineError::OutOfMemory {
                node_mem: mem,
                required: bytes,
                what: "broadcast replica".into(),
            });
        }
        let mut st = self.inner.state.lock();
        let dests = self.inner.cluster.nodes.saturating_sub(1);
        let t = broadcast_time(
            &self.inner.cluster.profile.network,
            self.inner.profile.broadcast,
            bytes,
            items,
            dests,
        ) + self.inner.profile.ser_time(bytes)
            + self.inner.profile.per_transfer_overhead_s * dests.max(1) as f64;
        let start = st.frontier;
        st.frontier += t;
        // Every node holds a replica. Under memory pressure a node first
        // LRU-evicts cached partitions, then falls back to a disk-backed
        // replica (Spark's MEMORY_AND_DISK broadcast blocks): the spill
        // write costs disk bandwidth and stretches the broadcast until the
        // slowest node has its copy.
        let mut spill_t = 0.0f64;
        for node in 0..self.inner.cluster.nodes {
            if !st.reserve_or_evict(node, bytes) {
                let dt = self.inner.cluster.profile.disk_time(bytes);
                let s = st.frontier;
                st.exec.record_spill(node, bytes, s, s + dt);
                spill_t = spill_t.max(dt);
            }
        }
        st.frontier += spill_t;
        let end = st.frontier;
        st.exec.advance_makespan(end);
        st.exec.record_broadcast(bytes, dests, start, end);
        let r = st.exec.report_mut();
        r.comm_s += t;
        r.overhead_s += spill_t;
        r.bytes_broadcast += bytes * dests.max(1) as u64;
        r.push_phase("broadcast", start, end);
        Ok(Broadcast {
            value: Arc::new(value),
        })
    }

    /// Enable speculative execution: tasks exceeding `threshold ×` the
    /// stage's median duration are capped at that bound, as if a backup
    /// copy had been launched on an idle core (Spark's
    /// `spark.speculation`; the paper's §6 straggler-mitigation item).
    pub fn enable_speculation(&self, threshold: f64) {
        assert!(threshold > 1.0, "speculation threshold must exceed 1.0");
        self.inner.state.lock().speculation = Some(threshold);
    }

    /// Charge driver-side work (e.g. a final connected-components pass on
    /// collected results) to the virtual clock, recorded as a named phase.
    pub fn charge_driver(&self, phase: &str, secs: f64) {
        assert!(secs >= 0.0, "cannot charge negative time");
        let mut st = self.inner.state.lock();
        let start = st.frontier;
        st.frontier += secs;
        let end = st.frontier;
        st.exec.advance_makespan(end);
        st.exec.report_mut().push_phase(phase, start, end);
    }

    /// Record a named phase covering `[start, end]` in virtual time
    /// without advancing the clock (annotation only).
    pub fn note_phase(&self, phase: &str, start: f64, end: f64) {
        let mut st = self.inner.state.lock();
        st.exec.report_mut().push_phase(phase, start, end);
    }

    /// Start recording a typed event trace (see [`netsim::Trace`]); the
    /// trace is carried inside [`Self::report`].
    pub fn enable_trace(&self) {
        self.inner.state.lock().exec.enable_trace();
    }

    /// Start recording a *sampled* trace: keep only every `stride`-th task
    /// attempt (network/memory events stay complete). See
    /// [`netsim::SimExecutor::enable_trace_sampled`].
    pub fn enable_trace_sampled(&self, stride: u32) {
        self.inner.state.lock().exec.enable_trace_sampled(stride);
    }

    /// Name the phase (and default task label) stamped onto subsequently
    /// traced events — drivers call this at algorithm-phase boundaries.
    pub fn set_phase(&self, phase: &str) {
        let mut st = self.inner.state.lock();
        st.exec.set_phase(phase);
        st.exec.set_task_label(phase);
    }

    /// Current virtual frontier (end of all completed work).
    pub fn now(&self) -> f64 {
        self.inner.state.lock().frontier
    }

    /// Snapshot of the simulated execution report so far.
    pub fn report(&self) -> SimReport {
        let mut st = self.inner.state.lock();
        let pending = self
            .inner
            .pending_recomputes
            .swap(0, std::sync::atomic::Ordering::Relaxed);
        st.exec.report_mut().recomputed_partitions += pending;
        let mut r = st.exec.report().clone();
        r.makespan_s = r.makespan_s.max(st.frontier);
        r
    }
}

/// A broadcast variable: cheap to clone into task closures, shared
/// storage per node.
pub struct Broadcast<T> {
    value: Arc<T>,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Broadcast<T> {
    /// Access the broadcast value.
    pub fn value(&self) -> &T {
        &self.value
    }
}
