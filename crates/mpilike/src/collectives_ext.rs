//! Extended collectives: `allgather`, `alltoall`, `reduce` (to root) and
//! point-to-point `sendrecv` — completing the MPI surface a port of the
//! paper's codes would expect.

use crate::comm::Comm;
use taskframe::Payload;

impl<'a> Comm<'a> {
    /// Every rank receives every rank's value (rank order). Cost model:
    /// ring allgather — `world − 1` rounds, each moving one value per
    /// rank; the critical path is `(world − 1)` max-size transfers.
    pub fn allgather<T>(&mut self, value: T) -> Vec<T>
    where
        T: Clone + Payload + Send + 'static,
    {
        let world = self.world();
        let net = self.network();
        self.collective_ext(value, move |clocks, inputs: Vec<T>| {
            let t0 = clocks.iter().copied().fold(0.0, f64::max);
            let max_bytes = inputs.iter().map(Payload::wire_bytes).max().unwrap_or(0);
            let rounds = (world - 1) as f64;
            let t = t0 + rounds * (net.transfer_time(max_bytes, false));
            let outs: Vec<Vec<T>> = (0..world).map(|_| inputs.clone()).collect();
            (outs, vec![t; world])
        })
    }

    /// Personalized all-to-all: rank `i` contributes `parts[j]` for every
    /// rank `j` and receives `inputs[j][i]` (in rank order). Cost model:
    /// pairwise exchange — `world − 1` rounds of simultaneous sends.
    ///
    /// # Panics
    /// Panics if any rank contributes a part list whose length ≠ world.
    pub fn alltoall<T>(&mut self, parts: Vec<T>) -> Vec<T>
    where
        T: Clone + Payload + Send + 'static,
    {
        let world = self.world();
        assert_eq!(parts.len(), world, "alltoall needs one part per rank");
        let net = self.network();
        self.collective_ext(parts, move |clocks, inputs: Vec<Vec<T>>| {
            let t0 = clocks.iter().copied().fold(0.0, f64::max);
            // Per round, every rank sends one part; charge the largest.
            let max_bytes = inputs
                .iter()
                .flat_map(|ps| ps.iter().map(Payload::wire_bytes))
                .max()
                .unwrap_or(0);
            let t = t0 + (world - 1) as f64 * net.transfer_time(max_bytes, false);
            let outs: Vec<Vec<T>> = (0..world)
                .map(|dst| (0..world).map(|src| inputs[src][dst].clone()).collect())
                .collect();
            (outs, vec![t; world])
        })
    }

    /// Reduce all contributions to `root` with an associative fold over
    /// rank order. Non-roots receive `None`. Cost: binomial tree,
    /// `⌈log₂ world⌉` rounds.
    pub fn reduce<T>(&mut self, root: usize, value: T, f: fn(T, T) -> T) -> Option<T>
    where
        T: Payload + Send + 'static,
    {
        let world = self.world();
        assert!(root < world, "reduce root out of range");
        let net = self.network();
        self.collective_ext(value, move |clocks, inputs: Vec<T>| {
            let t0 = clocks.iter().copied().fold(0.0, f64::max);
            let max_bytes = inputs.iter().map(Payload::wire_bytes).max().unwrap_or(0);
            let rounds = (world as f64).log2().ceil().max(1.0);
            let t = t0 + rounds * net.transfer_time(max_bytes, false);
            let mut acc: Option<T> = None;
            for v in inputs {
                acc = Some(match acc {
                    None => v,
                    Some(a) => f(a, v),
                });
            }
            let mut outs: Vec<Option<T>> = (0..world).map(|_| None).collect();
            outs[root] = acc;
            (outs, vec![t; world])
        })
    }

    /// Simultaneous exchange along a permutation: every rank sends to
    /// `peer_of(rank)` and receives from whichever rank targets it.
    ///
    /// # Panics
    /// Panics if `peer_of` is not a permutation of the ranks.
    pub fn sendrecv<T>(&mut self, peer: usize, value: T) -> T
    where
        T: Payload + Send + 'static,
    {
        let world = self.world();
        assert!(peer < world, "peer out of range");
        let net = self.network();
        let my_node = self.node_of(self.rank());
        let peer_node = self.node_of(peer);
        self.collective_ext((peer, value), move |clocks, inputs: Vec<(usize, T)>| {
            let t0 = clocks.iter().copied().fold(0.0, f64::max);
            let peers: Vec<usize> = inputs.iter().map(|(p, _)| *p).collect();
            {
                let mut seen = vec![false; world];
                for &p in &peers {
                    assert!(!seen[p], "sendrecv peers must form a permutation");
                    seen[p] = true;
                }
            }
            let max_bytes = inputs
                .iter()
                .map(|(_, v)| v.wire_bytes())
                .max()
                .unwrap_or(0);
            let _ = (my_node, peer_node);
            let t = t0 + net.transfer_time(max_bytes, false);
            // outs[dst] = the value sent by the rank whose peer is dst.
            let mut slots: Vec<Option<T>> = (0..world).map(|_| None).collect();
            for (src, (dst, v)) in inputs.into_iter().enumerate() {
                let _ = src;
                slots[dst] = Some(v);
            }
            let outs: Vec<T> = slots
                .into_iter()
                .map(|s| s.expect("permutation covers all ranks"))
                .collect();
            (outs, vec![t; world])
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::run;
    use netsim::{laptop, Cluster};

    fn cluster(ranks: usize) -> Cluster {
        Cluster::new(laptop(), ranks.div_ceil(8))
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let out = run(cluster(4), 4, |comm| comm.allgather(comm.rank() as u32 * 5));
        for v in out.results {
            assert_eq!(v, vec![0, 5, 10, 15]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let out = run(cluster(3), 3, |comm| {
            let rank = comm.rank() as u32;
            comm.alltoall(vec![rank * 10, rank * 10 + 1, rank * 10 + 2])
        });
        // Rank d receives element d from every source.
        assert_eq!(out.results[0], vec![0, 10, 20]);
        assert_eq!(out.results[1], vec![1, 11, 21]);
        assert_eq!(out.results[2], vec![2, 12, 22]);
    }

    #[test]
    fn reduce_to_root() {
        let out = run(cluster(5), 5, |comm| {
            comm.reduce(2, comm.rank() as u64 + 1, |a, b| a * b)
        });
        for (rank, v) in out.results.into_iter().enumerate() {
            if rank == 2 {
                assert_eq!(v, Some(120), "5! at the root");
            } else {
                assert_eq!(v, None);
            }
        }
    }

    #[test]
    fn sendrecv_ring() {
        let out = run(cluster(4), 4, |comm| {
            let next = (comm.rank() + 1) % comm.world();
            comm.sendrecv(next, comm.rank() as u32)
        });
        // Rank r receives from r-1 (mod world).
        assert_eq!(out.results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn allgather_advances_clock_with_world_size() {
        let t = |world: usize| {
            let out = run(cluster(world), world, |comm| {
                comm.allgather(vec![0u8; 1 << 16]);
                comm.clock()
            });
            out.results.into_iter().fold(0.0, f64::max) - 0.5
        };
        assert!(t(8) > t(2), "ring allgather grows with ranks");
    }
}
