//! Ring-buffered streaming for the MPI posture.
//!
//! SPMD has no task scheduler to absorb an unbounded stream, so the
//! idiomatic in-situ pattern is a fixed ring buffer: ranks fill `ring`
//! slots with incoming frames and drain them with one synchronous
//! collective step — the next step cannot start until the previous one
//! completed. There is no per-task dispatch overhead (the profile's
//! defining property), but the synchrony shows up as ring-step barriers.

use netsim::stream::{run_stream, DispatchMode, SourceLog, StreamJob, StreamRun};
use netsim::{Cluster, RetryPolicy, SimExecutor};
use taskframe::{mpi_profile, EngineError};

/// Run an event-time windowed streaming job over a delivery schedule with
/// `ring` buffer slots.
///
/// Window close, watermarks, late-frame disposition, backpressure, and
/// per-window lineage replay follow [`netsim::stream::run_stream`]. Pass
/// `RetryPolicy::new(1)` for the classic abort-on-failure posture, or a
/// multi-attempt policy for the checkpoint/restart-style recovery the
/// batch runner calls `try_run_with_policy`.
pub fn run_stream_ring(
    cluster: Cluster,
    ring: usize,
    source: &SourceLog,
    job: &StreamJob,
    policy: &RetryPolicy,
    frame_value: &mut dyn FnMut(usize) -> u64,
) -> Result<StreamRun, EngineError> {
    assert!(ring >= 1, "need at least one ring slot");
    let profile = mpi_profile();
    let spec = job.spec(DispatchMode::RingCollective(ring), 0.0);
    let mut exec = SimExecutor::new(cluster);
    // MPI traces are small (ring steps, not a task soup): always record,
    // matching the batch runner's posture.
    exec.enable_trace();
    exec.report_mut().overhead_s += profile.startup_s;
    exec.advance_makespan(profile.startup_s);
    exec.set_phase("stream");
    let output =
        run_stream(&mut exec, source, &spec, policy, frame_value).map_err(EngineError::from)?;
    Ok(StreamRun {
        output,
        report: exec.into_report(),
    })
}
