//! Rendezvous machinery for virtual-time collectives.
//!
//! Every rank calls the same collectives in the same order (SPMD), so a
//! per-rank sequence number identifies each collective instance. The last
//! rank to arrive runs the `finish` function, which sees every rank's
//! arrival clock and contribution and decides per-rank results and
//! completion clocks.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;

type Slot = Option<Box<dyn Any + Send>>;

struct Round {
    arrived: usize,
    taken: usize,
    clocks: Vec<f64>,
    inputs: Vec<Slot>,
    outputs: Vec<Slot>,
    completion: Vec<f64>,
    done: bool,
}

impl Round {
    fn new(world: usize) -> Self {
        Round {
            arrived: 0,
            taken: 0,
            clocks: vec![0.0; world],
            inputs: (0..world).map(|_| None).collect(),
            outputs: (0..world).map(|_| None).collect(),
            completion: vec![0.0; world],
            done: false,
        }
    }
}

/// Coordination point shared by all ranks of one world.
pub struct Rendezvous {
    world: usize,
    state: Mutex<HashMap<u64, Round>>,
    cv: Condvar,
    /// Communication seconds charged across all collectives (completion
    /// minus latest arrival, i.e. cost excluding load imbalance).
    comm_s: Mutex<f64>,
}

impl Rendezvous {
    pub fn new(world: usize) -> Self {
        assert!(world >= 1);
        Rendezvous {
            world,
            state: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            comm_s: Mutex::new(0.0),
        }
    }

    #[allow(dead_code)]
    pub fn world(&self) -> usize {
        self.world
    }

    /// Total virtual communication time charged so far.
    pub fn comm_seconds(&self) -> f64 {
        *self.comm_s.lock()
    }

    /// Enter collective `seq` as `rank` at virtual time `clock`,
    /// contributing `input`. Blocks until all ranks arrive; `finish`
    /// (executed exactly once, by the last arriver) maps arrival clocks and
    /// contributions to per-rank `(results, completion clocks)`. Returns
    /// this rank's result and completion clock.
    ///
    /// # Panics
    /// Panics if ranks disagree on the payload type for the same `seq`
    /// (an SPMD programming error).
    pub fn exchange<T, R, F>(
        &self,
        seq: u64,
        rank: usize,
        clock: f64,
        input: T,
        finish: F,
    ) -> (R, f64)
    where
        T: Send + 'static,
        R: Send + 'static,
        F: FnOnce(&[f64], Vec<T>) -> (Vec<R>, Vec<f64>),
    {
        let mut g = self.state.lock();
        {
            let round = g.entry(seq).or_insert_with(|| Round::new(self.world));
            assert!(
                round.inputs[rank].is_none(),
                "rank {rank} entered collective {seq} twice"
            );
            round.clocks[rank] = clock;
            round.inputs[rank] = Some(Box::new(input));
            round.arrived += 1;
        }
        let arrived = g.get(&seq).expect("round exists").arrived;
        if arrived == self.world {
            let round = g.get_mut(&seq).expect("round exists");
            let clocks = round.clocks.clone();
            let inputs: Vec<T> = round
                .inputs
                .iter_mut()
                .map(|slot| {
                    *slot
                        .take()
                        .expect("all inputs present")
                        .downcast::<T>()
                        .expect("SPMD ranks must use one payload type per collective")
                })
                .collect();
            let (outs, completion) = finish(&clocks, inputs);
            assert_eq!(
                outs.len(),
                self.world,
                "finish must return one result per rank"
            );
            assert_eq!(
                completion.len(),
                self.world,
                "finish must return one clock per rank"
            );
            let max_arrival = clocks.iter().copied().fold(0.0, f64::max);
            let max_completion = completion.iter().copied().fold(0.0, f64::max);
            *self.comm_s.lock() += (max_completion - max_arrival).max(0.0);
            for (slot, out) in round.outputs.iter_mut().zip(outs) {
                *slot = Some(Box::new(out));
            }
            round.completion = completion;
            round.done = true;
            self.cv.notify_all();
        } else {
            while !g.get(&seq).is_some_and(|r| r.done) {
                self.cv.wait(&mut g);
            }
        }
        let round = g.get_mut(&seq).expect("round exists");
        let out = *round.outputs[rank]
            .take()
            .expect("result present")
            .downcast::<R>()
            .expect("result type matches");
        let t = round.completion[rank];
        round.taken += 1;
        if round.taken == self.world {
            g.remove(&seq);
        }
        (out, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_rank_round() {
        let r = Rendezvous::new(1);
        let (out, t) = r.exchange(1, 0, 2.0, 5u32, |clocks, inputs| {
            assert_eq!(clocks, &[2.0]);
            (vec![inputs[0] * 2], vec![3.0])
        });
        assert_eq!(out, 10);
        assert_eq!(t, 3.0);
        assert_eq!(r.comm_seconds(), 1.0);
    }

    #[test]
    fn multi_rank_sum() {
        let r = Arc::new(Rendezvous::new(4));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|rank| {
                    let r = Arc::clone(&r);
                    s.spawn(move || {
                        r.exchange(7, rank, rank as f64, rank as u64, |clocks, inputs| {
                            let total: u64 = inputs.iter().sum();
                            let t = clocks.iter().copied().fold(0.0, f64::max) + 0.5;
                            (vec![total; 4], vec![t; 4])
                        })
                    })
                })
                .collect();
            for h in handles {
                let (sum, t) = h.join().unwrap();
                assert_eq!(sum, 6);
                assert_eq!(t, 3.5);
            }
        });
    }

    #[test]
    fn rounds_are_independent() {
        let r = Rendezvous::new(1);
        let (a, _) = r.exchange(1, 0, 0.0, 1u8, |_, i| (i, vec![0.0]));
        let (b, _) = r.exchange(2, 0, 0.0, "two".to_string(), |_, i| (i, vec![0.0]));
        assert_eq!(a, 1);
        assert_eq!(b, "two");
    }
}
