//! An MPI-equivalent SPMD substrate with virtual-time accounting — the
//! paper's MPI4py baseline.
//!
//! [`run`] spawns one OS thread per rank; every rank executes the same
//! closure (SPMD) against a [`Comm`] providing the collectives the paper's
//! implementations use (`barrier`, `bcast`, `scatter`, `gather`,
//! `allreduce`). Each rank keeps its own *virtual clock*:
//!
//! * [`Comm::compute`] runs real work, measures it, scales it by the
//!   machine profile and advances the rank's clock. Real execution is
//!   bounded by a compute semaphore whose capacity is the host-parallelism
//!   degree (`netsim::parallel`) at run entry. At the default degree 1
//!   this is a global token: host-core contention never pollutes
//!   measurements and concurrency exists only in virtual time. Higher
//!   degrees let ranks really compute in parallel on the host.
//! * Collectives synchronize clocks: the operation completes at
//!   `max(arrival clocks) + communication cost`, with costs from the
//!   cluster's [`netsim::NetworkModel`] (naive linear broadcast/gather,
//!   matching the paper's observation that MPI broadcast time grows
//!   linearly with process count).
//!
//! The returned [`netsim::SimReport`] carries the virtual makespan and the
//! byte counters the experiment harness prints.

mod collective;
mod collectives_ext;
mod comm;
mod stream;

pub use comm::{run, try_run, try_run_with_policy, Comm, MpiRunOutput};
pub use stream::run_stream_ring;

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Cluster;
    use taskframe::Payload;

    fn cluster(ranks: usize) -> Cluster {
        Cluster::builder()
            .cores_per_node(8)
            .nodes(ranks.div_ceil(8))
            .build()
    }

    #[test]
    fn spmd_ranks_see_their_ids() {
        let out = run(cluster(4), 4, |comm| (comm.rank(), comm.world()));
        let mut got = out.results;
        got.sort_unstable();
        assert_eq!(got, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn bcast_delivers_root_value() {
        let out = run(cluster(6), 6, |comm| {
            let v = if comm.rank() == 0 {
                Some(vec![7u32, 8, 9])
            } else {
                None
            };
            comm.bcast(0, v)
        });
        for r in out.results {
            assert_eq!(r, vec![7, 8, 9]);
        }
        assert!(out.report.bytes_broadcast > 0);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run(cluster(4), 4, |comm| {
            let rank = comm.rank() as u32;
            comm.gather(0, rank * 10)
        });
        let roots: Vec<_> = out.results.into_iter().flatten().collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0], vec![0, 10, 20, 30]);
    }

    #[test]
    fn scatter_distributes_parts() {
        let out = run(cluster(3), 3, |comm| {
            let parts = if comm.rank() == 0 {
                Some(vec![vec![1u32], vec![2, 2], vec![3, 3, 3]])
            } else {
                None
            };
            comm.scatter(0, parts)
        });
        let mut lens: Vec<usize> = out.results.iter().map(Vec::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn allreduce_max() {
        let out = run(cluster(5), 5, |comm| {
            comm.allreduce_f64(comm.rank() as f64, f64::max)
        });
        for v in out.results {
            assert_eq!(v, 4.0);
        }
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let out = run(cluster(2), 2, |comm| {
            if comm.rank() == 0 {
                comm.charge(1.0); // rank 0 is busy for 1 virtual second
            }
            comm.barrier();
            comm.clock()
        });
        // After the barrier both clocks are (at least) the slowest arrival.
        for c in out.results {
            assert!(c >= 1.0, "clock after barrier: {c}");
        }
    }

    #[test]
    fn compute_advances_clock_and_runs_really() {
        let out = run(cluster(2), 2, |comm| {
            let v = comm.compute(|| (0..1000u64).sum::<u64>());
            (v, comm.clock())
        });
        for (v, clock) in out.results {
            assert_eq!(v, 499_500);
            assert!(clock > 0.0);
        }
    }

    #[test]
    fn makespan_reflects_slowest_rank() {
        let out = run(cluster(3), 3, |comm| {
            comm.charge(comm.rank() as f64);
        });
        assert!(out.report.makespan_s >= 2.0);
    }

    #[test]
    fn broadcast_cost_grows_with_world_size() {
        let payload = vec![0u8; 1 << 20];
        let t = |world: usize| {
            let p = payload.clone();
            let out = run(cluster(world), world, move |comm| {
                let v = if comm.rank() == 0 {
                    Some(p.clone())
                } else {
                    None
                };
                comm.bcast(0, v);
                comm.clock()
            });
            // Subtract the fixed mpirun startup to isolate broadcast cost.
            out.results.into_iter().fold(0.0, f64::max) - 0.5
        };
        let t4 = t(4);
        let t16 = t(16);
        assert!(
            t16 > t4 * 2.0,
            "linear broadcast should grow with ranks: t4={t4} t16={t16}"
        );
    }

    #[test]
    fn oversized_bcast_fails_typed_on_every_rank() {
        // 1 MiB node budget over 8 ranks = 128 KiB fixed buffers; a
        // 1 MiB replica cannot fit any of them, so every rank sees the
        // same typed error — no panic, no hang, no mpirun teardown.
        let cluster = Cluster::builder()
            .cores_per_node(8)
            .mem_budget(1 << 20)
            .build();
        let out = try_run(cluster, 4, |comm| {
            let v = if comm.rank() == 0 {
                Some(vec![0u8; 1 << 20])
            } else {
                None
            };
            comm.try_bcast(0, v)
        })
        .unwrap();
        for r in &out.results {
            let err = r.as_ref().expect_err("replica cannot fit a 128 KiB buffer");
            assert!(err.to_string().contains("out of memory"), "{err}");
        }
        assert!(out.report.oom_kills >= 1);
    }

    #[test]
    fn chunked_bcast_pays_latency_per_chunk() {
        // Same payload, shrinking buffers: more chunks, more latency.
        let t = |mem: u64| {
            let cluster = Cluster::builder()
                .nodes(2)
                .cores_per_node(8)
                .mem_budget(mem)
                .build();
            let out = run(cluster, 16, |comm| {
                let v = if comm.rank() == 0 {
                    Some(vec![0u8; 64 * 1024])
                } else {
                    None
                };
                comm.bcast(0, v);
                comm.clock()
            });
            out.results.into_iter().fold(0.0, f64::max)
        };
        let roomy = t(1 << 30);
        let tight = t(1 << 20); // 128 KiB buffers → 32 KiB chunks
        assert!(
            tight > roomy,
            "chunked sends must cost extra latency: roomy={roomy} tight={tight}"
        );
    }

    #[test]
    fn gather_overflowing_root_fails_typed() {
        // Each rank contributes 64 KiB; 16 ranks = 1 MiB at the root,
        // which only holds a 128 KiB fixed buffer.
        let cluster = Cluster::builder()
            .nodes(2)
            .cores_per_node(8)
            .mem_budget(1 << 20)
            .build();
        let out = try_run(cluster, 16, |comm| {
            comm.try_gather(0, vec![comm.rank() as u8; 64 * 1024])
        })
        .unwrap();
        for r in &out.results {
            let err = r.as_ref().expect_err("gathered 1 MiB cannot fit 128 KiB");
            assert!(matches!(
                err,
                taskframe::EngineError::MemoryExhausted { .. }
            ));
        }
    }

    #[test]
    fn mem_shrink_fault_turns_fitting_bcast_into_typed_error() {
        // Nominally the 256 KiB replica fits the 512 KiB buffers; a fault
        // shrinking the node's budget at t=0 leaves 16 KiB buffers and the
        // collective must fail typed mid-run.
        let plan = netsim::FaultPlan::none().shrink_memory(0, 0.0, 128 * 1024);
        let cluster = Cluster::builder()
            .cores_per_node(8)
            .mem_budget(4 << 20)
            .fault_plan(plan)
            .build();
        let out = try_run(cluster, 4, |comm| {
            let v = if comm.rank() == 0 {
                Some(vec![0u8; 256 * 1024])
            } else {
                None
            };
            comm.try_bcast(0, v)
        })
        .unwrap();
        for r in &out.results {
            assert!(r.is_err(), "shrunken buffers must refuse the replica");
        }
    }

    #[test]
    fn single_rank_world_works() {
        let out = run(cluster(1), 1, |comm| {
            let v = comm.bcast(0, Some(41u32)) + 1;
            comm.gather(0, v).map(|g| g[0])
        });
        assert_eq!(out.results, vec![Some(42)]);
    }

    #[test]
    fn payload_bytes_accounted_for_gather() {
        let out = run(cluster(4), 4, |comm| {
            let data = vec![comm.rank() as u32; 100];
            assert_eq!(data.wire_bytes(), 404);
            comm.gather(0, data);
        });
        assert!(
            out.report.bytes_shuffled >= 3 * 404,
            "gather moves non-root payloads"
        );
    }
}
