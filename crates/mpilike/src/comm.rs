//! The SPMD communicator and runner.

use crate::collective::Rendezvous;
use netsim::{Cluster, EventKind, RetryPolicy, SimReport, Trace, TraceEvent};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use taskframe::{mpi_profile, EngineError, Payload};

/// Payloads larger than this fraction of a rank's fixed buffer move in
/// chunks (rendezvous pipelining), each extra chunk paying one more
/// network latency.
const CHUNKS_PER_BUFFER: u64 = 4;

/// Transfer time for one collective leg under fixed per-rank buffers.
fn chunked_leg(net: netsim::NetworkModel, bytes: u64, same_node: bool, buffer: u64) -> f64 {
    let chunk = (buffer / CHUNKS_PER_BUFFER).max(1);
    let n_chunks = bytes.div_ceil(chunk).max(1);
    net.transfer_time(bytes, same_node) + (n_chunks - 1) as f64 * net.latency_s
}

struct Shared {
    rendezvous: Rendezvous,
    cluster: Cluster,
    /// Bounds how many ranks execute *real* work concurrently. At the
    /// default capacity 1 this is the historical global compute token:
    /// strict serialization, so host-core contention cannot inflate
    /// measurements and parallelism lives in virtual time only. A higher
    /// host-parallelism degree (`netsim::parallel::current_degree` at run
    /// entry) admits that many ranks at once — measurements may then
    /// contend, but results and (under deterministic timing) the whole
    /// report stay identical because virtual-time accounting is per-rank.
    compute_token: netsim::parallel::Semaphore,
    compute_s: Mutex<f64>,
    bytes_broadcast: AtomicU64,
    bytes_shuffled: AtomicU64,
    /// Collectives refused because a payload could not fit any rank's
    /// fixed buffer (MPI_ERR_NO_MEM, surfaced typed to every rank).
    oom_kills: AtomicU64,
    /// Typed event record. SPMD runs have few events (ranks × collectives),
    /// so the trace is always on; it is sorted into virtual-time order
    /// after the threads join and attached to the report.
    trace: Mutex<Trace>,
    /// Global completion time of each collective (max over ranks, keyed by
    /// sequence number): the implicit checkpoints a policied restart can
    /// resume from — every rank provably held consistent state there.
    collective_ends: Mutex<BTreeMap<u64, f64>>,
}

impl Shared {
    /// The fixed receive buffer of a rank on `node` at virtual time
    /// `at_s`: the node's (possibly fault-shrunk) budget split evenly
    /// among its cores, one rank per core.
    fn rank_buffer(&self, node: usize, at_s: f64) -> u64 {
        self.cluster.mem_budget(node, at_s) / self.cluster.profile.cores_per_node as u64
    }

    fn record(&self, core: usize, start_s: f64, end_s: f64, phase: &str, kind: EventKind) {
        let mut trace = self.trace.lock();
        let task = trace.next_id();
        let phase = trace.intern(phase);
        trace.record(TraceEvent {
            task,
            core,
            start_s,
            end_s: end_s.max(start_s),
            killed: false,
            ready_s: start_s,
            phase,
            kind,
        });
    }

    /// Record a labelled task attempt (labels are interned under the
    /// trace lock, so ranks can record concurrently without allocating
    /// shared strings).
    fn record_task(&self, core: usize, start_s: f64, end_s: f64, phase: &str, label: &str) {
        let mut trace = self.trace.lock();
        let task = trace.next_id();
        let phase = trace.intern(phase);
        let label = trace.intern(label);
        trace.record(TraceEvent {
            task,
            core,
            start_s,
            end_s: end_s.max(start_s),
            killed: false,
            ready_s: start_s,
            phase,
            kind: EventKind::Task {
                label,
                speculative: false,
            },
        });
    }
}

/// Per-rank communicator handle.
pub struct Comm<'a> {
    rank: usize,
    world: usize,
    clock: f64,
    seq: u64,
    phase: String,
    shared: &'a Shared,
}

/// Results of an SPMD run: per-rank return values (rank order) plus the
/// simulated execution report.
pub struct MpiRunOutput<T> {
    pub results: Vec<T>,
    pub report: SimReport,
}

/// Launch `world` ranks running `f`, one rank per simulated core, and
/// collect their results. Panics in any rank propagate, and a node death
/// scripted before the job's end aborts the whole run (use
/// [`try_run`] to observe the abort as an error).
pub fn run<T, F>(cluster: Cluster, world: usize, f: F) -> MpiRunOutput<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Send + Sync,
{
    try_run(cluster, world, f).expect("MPI job aborted")
}

/// Fallible variant of [`run`]: SPMD has no task-level recovery, so if the
/// fault plan kills a node hosting any rank before the job would have
/// finished, the whole communicator aborts with
/// [`EngineError::WorkerLost`] — `mpirun` tears everything down.
pub fn try_run<T, F>(cluster: Cluster, world: usize, f: F) -> Result<MpiRunOutput<T>, EngineError>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Send + Sync,
{
    // One attempt: the default MPI posture (a lost rank aborts the job).
    try_run_with_policy(cluster, world, &RetryPolicy::new(1), true, f)
}

/// Checkpoint/restart variant: instead of aborting the whole job on a node
/// death, the runtime restarts from the **last completed collective
/// barrier** before the death (every rank provably held consistent state
/// there), paying failure detection, the policy's backoff, a fresh
/// `mpirun` launch, and the re-execution of everything after the
/// checkpoint. `restart_from_barrier: false` models plain job-level
/// restart (from scratch) for comparison. The allocation is assumed to be
/// refilled with a replacement node, as a resource manager would.
///
/// With `policy.max_attempts == 1` this is exactly [`try_run`]: the first
/// death before the job's end surfaces as [`EngineError::WorkerLost`].
pub fn try_run_with_policy<T, F>(
    cluster: Cluster,
    world: usize,
    policy: &RetryPolicy,
    restart_from_barrier: bool,
    f: F,
) -> Result<MpiRunOutput<T>, EngineError>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Send + Sync,
{
    assert!(world >= 1, "need at least one rank");
    assert!(
        world <= cluster.total_cores(),
        "world size {world} exceeds {} cores",
        cluster.total_cores()
    );
    let profile = mpi_profile();
    let shared = Shared {
        rendezvous: Rendezvous::new(world),
        cluster,
        compute_token: netsim::parallel::Semaphore::new(netsim::parallel::current_degree()),
        compute_s: Mutex::new(0.0),
        bytes_broadcast: AtomicU64::new(0),
        bytes_shuffled: AtomicU64::new(0),
        oom_kills: AtomicU64::new(0),
        trace: Mutex::new(Trace::default()),
        collective_ends: Mutex::new(BTreeMap::new()),
    };

    let mut results: Vec<Option<T>> = Vec::with_capacity(world);
    let mut final_clocks = vec![0.0f64; world];
    {
        let shared = &shared;
        let f = &f;
        let slots: Vec<(Option<T>, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..world)
                .map(|rank| {
                    s.spawn(move || {
                        let mut comm = Comm {
                            rank,
                            world,
                            clock: profile.startup_s,
                            seq: 0,
                            phase: String::new(),
                            shared,
                        };
                        let out = f(&mut comm);
                        (Some(out), comm.clock)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        });
        for (i, (out, clock)) in slots.into_iter().enumerate() {
            results.push(out);
            final_clocks[i] = clock;
        }
    }

    let job_end = final_clocks
        .iter()
        .copied()
        .fold(0.0, f64::max)
        .max(profile.startup_s);
    // SPMD abort-and-restart semantics, applied post hoc: the virtual
    // timeline of the job is fixed, so a death simply shifts everything
    // after its restart point. Walk the deaths in time order; each one
    // hitting a node that hosts ranks before the (shifted) job end costs
    // one attempt and a restart from the last completed collective
    // barrier (or from scratch, without barrier checkpoints).
    let barriers: Vec<f64> = shared.collective_ends.lock().values().copied().collect();
    let rank_nodes: std::collections::BTreeSet<usize> = (0..world)
        .map(|rank| shared.cluster.node_of_core(rank))
        .collect();
    // A fault hitting the communicator: a node death (`heal: None`), or a
    // network partition separating two rank-hosting nodes (`heal:
    // Some(_)`) — the cut breaks collectives exactly like a death, except
    // the isolated ranks are alive and their progress must be fenced.
    struct CommFault {
        node: usize,
        at_s: f64,
        heal: Option<f64>,
    }
    let mut faults_hit: Vec<CommFault> = rank_nodes
        .iter()
        .filter_map(|&node| {
            shared
                .cluster
                .faults()
                .node_death(node)
                .map(|at_s| CommFault {
                    node,
                    at_s,
                    heal: None,
                })
        })
        .collect();
    let root_node = shared.cluster.node_of_core(0);
    for p in shared.cluster.faults().partitions() {
        // The cut matters iff it separates any two rank-hosting nodes.
        // Blame the smallest node severed from rank 0's side (rank 0
        // hosts the job launcher), falling back to the smallest node in
        // any severed pair.
        let victim = rank_nodes
            .iter()
            .find(|&&n| p.separates(root_node, n))
            .or_else(|| {
                rank_nodes
                    .iter()
                    .find(|&&a| rank_nodes.iter().any(|&b| p.separates(a, b)))
            });
        if let Some(&node) = victim {
            faults_hit.push(CommFault {
                node,
                at_s: p.from_s,
                heal: Some(p.to_s),
            });
        }
    }
    faults_hit.sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.node.cmp(&b.node)));
    let mut attempts: u32 = 1;
    let mut shift = 0.0f64;
    let mut end = job_end;
    let mut restarts = 0usize;
    let mut lost_time = 0.0f64;
    let mut zombie_restarts = 0usize;
    let mut zombie_time = 0.0f64;
    let mut recovery_windows: Vec<(f64, f64)> = Vec::new();
    let mut fence_windows: Vec<(f64, f64)> = Vec::new();
    for CommFault { node, at_s, heal } in faults_hit {
        if at_s >= end {
            continue;
        }
        // A cut the detector waits out is a stall, not a failure: ranks
        // block on the broken collective and resume at heal. No attempt
        // is consumed and no work is redone — the timeline just shifts.
        if let Some(h) = heal {
            let waited_out = match policy.detector() {
                Some(d) => d.suspect_time(at_s) >= h,
                None => at_s + policy.detection_delay_s >= h,
            };
            if waited_out {
                recovery_windows.push((at_s, h));
                end += h - at_s;
                shift += h - at_s;
                continue;
            }
        }
        if policy.max_attempts == 1 {
            // Plain MPI: nothing to retry, the communicator is gone —
            // a partition crossing it is indistinguishable from a death.
            return Err(EngineError::WorkerLost { node, at_s });
        }
        // Death is observed one heartbeat later; a partition via the
        // suspicion detector timing out on the silent cohort.
        let observed = match heal {
            Some(_) => match policy.detector() {
                Some(d) => d.suspect_time(at_s),
                None => at_s + policy.detection_delay_s,
            },
            None => at_s + policy.detection_delay_s,
        };
        if attempts >= policy.max_attempts {
            return Err(EngineError::RetriesExhausted {
                attempts,
                last_failure_s: observed,
            });
        }
        // Gate the restart against the deadline *before* committing to
        // the backoff + startup wait: a relaunch that could only begin
        // past the deadline fails at observation time, typed, instead of
        // simulating a doomed restart. A partition restart additionally
        // cannot relaunch before the cut heals: the isolated nodes must
        // rejoin the communicator.
        let resume = {
            let r = observed + policy.backoff_before(attempts + 1) + profile.startup_s;
            match heal {
                Some(h) => r.max(h),
                None => r,
            }
        };
        policy.deadline_gate(observed, resume)?;
        attempts += 1;
        // How far the job had progressed (in its own timeline) when the
        // fault hit, and the checkpoint to resume from.
        let progress = (at_s - shift).clamp(profile.startup_s, job_end);
        let ckpt = if restart_from_barrier {
            barriers
                .iter()
                .copied()
                .filter(|&b| b <= progress)
                .fold(profile.startup_s, f64::max)
        } else {
            profile.startup_s
        };
        // Every rank's work since the checkpoint is redone.
        lost_time += (progress - ckpt) * world as f64;
        if heal.is_some() {
            // The isolated cohort kept computing past the checkpoint;
            // when it rejoins, its post-checkpoint contributions carry a
            // stale communicator epoch and are discarded — exactly once.
            zombie_restarts += 1;
            zombie_time += progress - ckpt;
            fence_windows.push((observed, resume));
        }
        recovery_windows.push((at_s, resume));
        end = resume + (job_end - ckpt);
        shift = end - job_end;
        restarts += 1;
    }
    if let Some(deadline) = policy.deadline_s {
        if end > deadline {
            return Err(EngineError::DeadlineExceeded {
                deadline_s: deadline,
                at_s: end,
            });
        }
    }
    // Threads record trace events in host-scheduling order; sort into
    // virtual-time order and renumber so runs are reproducible. (Events
    // keep the original, unshifted timeline; restarts appear as recovery
    // events alongside it.)
    let mut trace = shared.trace.into_inner();
    for &(start_s, end_s) in &recovery_windows {
        let task = trace.next_id();
        let phase = trace.intern("recovery");
        let label = trace.intern("restart");
        trace.record(TraceEvent {
            task,
            core: 0,
            start_s,
            end_s,
            killed: false,
            ready_s: start_s,
            phase,
            kind: EventKind::Recovery { label },
        });
    }
    for &(start_s, end_s) in &fence_windows {
        let task = trace.next_id();
        let phase = trace.intern("recovery");
        let label = trace.intern("communicator-fenced");
        trace.record(TraceEvent {
            task,
            core: 0,
            start_s,
            end_s,
            killed: false,
            ready_s: start_s,
            phase,
            kind: EventKind::Fenced { label },
        });
    }
    trace.sort_for_determinism();
    let mut report = SimReport {
        makespan_s: end,
        tasks: world,
        compute_s: *shared.compute_s.lock(),
        overhead_s: profile.startup_s * (1 + restarts) as f64,
        comm_s: shared.rendezvous.comm_seconds(),
        bytes_broadcast: shared.bytes_broadcast.load(Ordering::Relaxed),
        bytes_shuffled: shared.bytes_shuffled.load(Ordering::Relaxed),
        oom_kills: shared.oom_kills.load(Ordering::Relaxed) as usize,
        retries: restarts,
        lost_time_s: lost_time,
        zombie_attempts: zombie_restarts,
        zombie_time_s: zombie_time,
        fenced_results: zombie_restarts,
        trace: Some(trace),
        ..Default::default()
    };
    for (start_s, end_s) in recovery_windows {
        report.push_phase("recovery", start_s, end_s);
    }
    Ok(MpiRunOutput {
        results: results
            .into_iter()
            .map(|o| o.expect("rank result"))
            .collect(),
        report,
    })
}

impl<'a> Comm<'a> {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn world(&self) -> usize {
        self.world
    }

    /// This rank's virtual clock (seconds since job launch).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Name the phase stamped onto this rank's subsequent trace events.
    pub fn set_phase(&mut self, phase: &str) {
        self.phase = phase.to_string();
    }

    fn node_of_rank(&self, rank: usize) -> usize {
        self.shared.cluster.node_of_core(rank)
    }

    /// Node hosting a rank (for extended collectives).
    pub(crate) fn node_of(&self, rank: usize) -> usize {
        self.node_of_rank(rank)
    }

    /// The cluster's network model (for extended collectives).
    pub(crate) fn network(&self) -> netsim::NetworkModel {
        self.shared.cluster.profile.network
    }

    /// Execute real work; its measured time (scaled to the machine profile)
    /// advances this rank's virtual clock.
    pub fn compute<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let _token = self.shared.compute_token.acquire();
        let (out, host_s) = netsim::measure(f);
        // A straggler core stretches this rank's compute (and, through the
        // collectives, everyone waiting on it — SPMD has no mitigation).
        let sim_s = self.shared.cluster.scale_compute(host_s)
            * self.shared.cluster.faults().slowdown(self.rank);
        let start = self.clock;
        self.clock += sim_s;
        *self.shared.compute_s.lock() += sim_s;
        self.shared
            .record_task(self.rank, start, self.clock, &self.phase, "compute");
        out
    }

    /// Advance this rank's clock by modelled (unmeasured) time.
    pub fn charge(&mut self, secs: f64) {
        assert!(secs >= 0.0);
        self.clock += secs;
    }

    pub(crate) fn collective_ext<T, R, F>(&mut self, input: T, finish: F) -> R
    where
        T: Send + 'static,
        R: Send + 'static,
        F: FnOnce(&[f64], Vec<T>) -> (Vec<R>, Vec<f64>),
    {
        self.collective(input, finish)
    }

    fn collective<T, R, F>(&mut self, input: T, finish: F) -> R
    where
        T: Send + 'static,
        R: Send + 'static,
        F: FnOnce(&[f64], Vec<T>) -> (Vec<R>, Vec<f64>),
    {
        self.seq += 1;
        let (out, t) = self
            .shared
            .rendezvous
            .exchange(self.seq, self.rank, self.clock, input, finish);
        self.clock = t;
        // The collective is globally complete once its slowest rank is
        // done — that instant is a consistent restart checkpoint.
        let mut ends = self.shared.collective_ends.lock();
        let e = ends.entry(self.seq).or_insert(self.clock);
        if self.clock > *e {
            *e = self.clock;
        }
        drop(ends);
        out
    }

    /// Synchronize all ranks (tree barrier: log₂(world) latency rounds).
    pub fn barrier(&mut self) {
        let world = self.world;
        let net = self.shared.cluster.profile.network;
        self.collective((), move |clocks, _: Vec<()>| {
            let t = clocks.iter().copied().fold(0.0, f64::max)
                + (world as f64).log2().ceil().max(1.0) * net.latency_s;
            (vec![(); world], vec![t; world])
        })
    }

    /// Broadcast `value` from `root` (which must pass `Some`) to all ranks.
    /// Naive linear algorithm: the root sends to each rank in turn, so the
    /// completion time of the i-th destination grows linearly — the MPI
    /// behaviour the paper measures in Fig. 8.
    ///
    /// Panics if the replica exceeds any rank's fixed buffer (use
    /// [`Self::try_bcast`] under memory pressure).
    pub fn bcast<T>(&mut self, root: usize, value: Option<T>) -> T
    where
        T: Clone + Payload + Send + 'static,
    {
        self.try_bcast(root, value)
            .expect("bcast replica exceeded a fixed per-rank buffer")
    }

    /// Fallible [`Self::bcast`]: a replica larger than a quarter of a
    /// destination's fixed buffer moves in chunks (extra latency per
    /// chunk); one that cannot fit the buffer at all fails the collective
    /// for every rank with a typed [`EngineError::MemoryExhausted`] —
    /// never a panic or hang.
    pub fn try_bcast<T>(&mut self, root: usize, value: Option<T>) -> Result<T, EngineError>
    where
        T: Clone + Payload + Send + 'static,
    {
        assert!(root < self.world, "bcast root out of range");
        let world = self.world;
        let net = self.shared.cluster.profile.network;
        let nodes: Vec<usize> = (0..world).map(|r| self.node_of_rank(r)).collect();
        let bytes_counter = &self.shared.bytes_broadcast;
        let shared = self.shared;
        let phase = self.phase.clone();
        self.collective(value, move |clocks, mut inputs: Vec<Option<T>>| {
            let v = inputs[root]
                .take()
                .unwrap_or_else(|| panic!("rank {root} must provide the bcast value"));
            let t0 = clocks.iter().copied().fold(0.0, f64::max);
            let bytes = v.wire_bytes();
            for (r, &node) in nodes.iter().enumerate() {
                let buffer = shared.rank_buffer(node, t0);
                if bytes > buffer {
                    shared.oom_kills.fetch_add(1, Ordering::Relaxed);
                    shared.record(r, t0, t0, &phase, EventKind::OomKill { node });
                    let err = EngineError::MemoryExhausted {
                        node,
                        budget: buffer,
                        required: bytes,
                        at_s: t0,
                        what: "bcast replica in a fixed per-rank buffer".into(),
                    };
                    return (vec![Err(err); world], vec![t0; world]);
                }
            }
            let mut completion = vec![0.0; world];
            let mut elapsed = 0.0;
            for r in 0..world {
                if r == root {
                    completion[r] = t0;
                } else {
                    let leg_start = t0 + elapsed;
                    let buffer = shared.rank_buffer(nodes[r], t0);
                    elapsed += chunked_leg(net, bytes, nodes[r] == nodes[root], buffer);
                    completion[r] = t0 + elapsed;
                    bytes_counter.fetch_add(bytes, Ordering::Relaxed);
                    shared.record(
                        r,
                        leg_start,
                        completion[r],
                        &phase,
                        EventKind::Fetch {
                            from_node: nodes[root],
                            to_node: nodes[r],
                            bytes,
                        },
                    );
                }
            }
            // The root is done once its last send completes.
            completion[root] = t0 + elapsed;
            shared.record(
                root,
                t0,
                completion[root],
                &phase,
                EventKind::Broadcast {
                    bytes,
                    dest_nodes: world.saturating_sub(1),
                },
            );
            ((0..world).map(|_| Ok(v.clone())).collect(), completion)
        })
    }

    /// Scatter `parts[i]` to rank `i` from `root`. Sequential sends, like
    /// [`Self::bcast`].
    ///
    /// Panics if a part exceeds its destination rank's fixed buffer (use
    /// [`Self::try_scatter`] under memory pressure).
    pub fn scatter<T>(&mut self, root: usize, parts: Option<Vec<T>>) -> T
    where
        T: Payload + Send + 'static,
    {
        self.try_scatter(root, parts)
            .expect("scatter part exceeded a fixed per-rank buffer")
    }

    /// Fallible [`Self::scatter`]: oversized parts chunk; a part that
    /// cannot fit its destination's fixed buffer fails the collective for
    /// every rank with a typed error.
    pub fn try_scatter<T>(&mut self, root: usize, parts: Option<Vec<T>>) -> Result<T, EngineError>
    where
        T: Payload + Send + 'static,
    {
        assert!(root < self.world, "scatter root out of range");
        let world = self.world;
        let net = self.shared.cluster.profile.network;
        let nodes: Vec<usize> = (0..world).map(|r| self.node_of_rank(r)).collect();
        let bytes_counter = &self.shared.bytes_shuffled;
        let shared = self.shared;
        let phase = self.phase.clone();
        self.collective(parts, move |clocks, mut inputs: Vec<Option<Vec<T>>>| {
            let parts = inputs[root]
                .take()
                .unwrap_or_else(|| panic!("rank {root} must provide scatter parts"));
            assert_eq!(parts.len(), world, "scatter needs one part per rank");
            let t0 = clocks.iter().copied().fold(0.0, f64::max);
            for (r, part) in parts.iter().enumerate() {
                let bytes = part.wire_bytes();
                let buffer = shared.rank_buffer(nodes[r], t0);
                if bytes > buffer {
                    shared.oom_kills.fetch_add(1, Ordering::Relaxed);
                    shared.record(r, t0, t0, &phase, EventKind::OomKill { node: nodes[r] });
                    let err = EngineError::MemoryExhausted {
                        node: nodes[r],
                        budget: buffer,
                        required: bytes,
                        at_s: t0,
                        what: "scatter part in a fixed per-rank buffer".into(),
                    };
                    return (
                        (0..world).map(|_| Err(err.clone())).collect(),
                        vec![t0; world],
                    );
                }
            }
            let mut completion = vec![t0; world];
            let mut elapsed = 0.0;
            for (r, part) in parts.iter().enumerate() {
                if r != root {
                    let bytes = part.wire_bytes();
                    let leg_start = t0 + elapsed;
                    let buffer = shared.rank_buffer(nodes[r], t0);
                    elapsed += chunked_leg(net, bytes, nodes[r] == nodes[root], buffer);
                    completion[r] = t0 + elapsed;
                    bytes_counter.fetch_add(bytes, Ordering::Relaxed);
                    shared.record(
                        r,
                        leg_start,
                        completion[r],
                        &phase,
                        EventKind::Fetch {
                            from_node: nodes[root],
                            to_node: nodes[r],
                            bytes,
                        },
                    );
                }
            }
            completion[root] = t0 + elapsed;
            let outs: Vec<Result<T, EngineError>> = parts.into_iter().map(Ok).collect();
            (outs, completion)
        })
    }

    /// Gather every rank's value at `root` (rank order). Non-root ranks
    /// return `None` and continue as soon as their send is delivered.
    ///
    /// Panics if the gathered total exceeds the root rank's fixed buffer
    /// (use [`Self::try_gather`] under memory pressure).
    pub fn gather<T>(&mut self, root: usize, value: T) -> Option<Vec<T>>
    where
        T: Payload + Send + 'static,
    {
        self.try_gather(root, value)
            .expect("gathered payloads exceeded the root's fixed buffer")
    }

    /// Fallible [`Self::gather`]: individual sends chunk against the
    /// root's fixed buffer; a gathered total the root cannot hold fails
    /// the collective for every rank with a typed error — the classic
    /// root-rank gather OOM, surfaced instead of crashing `mpirun`.
    pub fn try_gather<T>(&mut self, root: usize, value: T) -> Result<Option<Vec<T>>, EngineError>
    where
        T: Payload + Send + 'static,
    {
        assert!(root < self.world, "gather root out of range");
        let world = self.world;
        let net = self.shared.cluster.profile.network;
        let nodes: Vec<usize> = (0..world).map(|r| self.node_of_rank(r)).collect();
        let bytes_counter = &self.shared.bytes_shuffled;
        let shared = self.shared;
        let phase = self.phase.clone();
        self.collective(value, move |clocks, inputs: Vec<T>| {
            let t0 = clocks.iter().copied().fold(0.0, f64::max);
            let total: u64 = inputs.iter().map(Payload::wire_bytes).sum();
            let root_buffer = shared.rank_buffer(nodes[root], t0);
            if total > root_buffer {
                shared.oom_kills.fetch_add(1, Ordering::Relaxed);
                shared.record(
                    root,
                    t0,
                    t0,
                    &phase,
                    EventKind::OomKill { node: nodes[root] },
                );
                let err = EngineError::MemoryExhausted {
                    node: nodes[root],
                    budget: root_buffer,
                    required: total,
                    at_s: t0,
                    what: "gathered payloads in the root's fixed buffer".into(),
                };
                return (
                    (0..world).map(|_| Err(err.clone())).collect(),
                    vec![t0; world],
                );
            }
            let mut completion = vec![0.0; world];
            let mut elapsed = 0.0;
            for r in 0..world {
                if r != root {
                    let bytes = inputs[r].wire_bytes();
                    let leg_start = t0 + elapsed;
                    elapsed += chunked_leg(net, bytes, nodes[r] == nodes[root], root_buffer);
                    completion[r] = t0 + elapsed;
                    bytes_counter.fetch_add(bytes, Ordering::Relaxed);
                    shared.record(
                        r,
                        leg_start,
                        completion[r],
                        &phase,
                        EventKind::Fetch {
                            from_node: nodes[r],
                            to_node: nodes[root],
                            bytes,
                        },
                    );
                }
            }
            completion[root] = t0 + elapsed;
            let mut outs: Vec<Result<Option<Vec<T>>, EngineError>> =
                (0..world).map(|_| Ok(None)).collect();
            outs[root] = Ok(Some(inputs));
            (outs, completion)
        })
    }

    /// All-reduce a scalar with a commutative, associative `op`
    /// (recursive-doubling cost: log₂(world) latency rounds).
    pub fn allreduce_f64(&mut self, value: f64, op: fn(f64, f64) -> f64) -> f64 {
        let world = self.world;
        let net = self.shared.cluster.profile.network;
        self.collective(value, move |clocks, inputs: Vec<f64>| {
            let mut acc = inputs[0];
            for &v in &inputs[1..] {
                acc = op(acc, v);
            }
            let t = clocks.iter().copied().fold(0.0, f64::max)
                + (world as f64).log2().ceil().max(1.0) * net.latency_s;
            (vec![acc; world], vec![t; world])
        })
    }
}
