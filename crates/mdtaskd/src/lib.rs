//! `mdtaskd`: multi-tenant analysis-as-a-service in virtual time.
//!
//! The paper evaluates one analysis job at a time; the service shape the
//! roadmap aims at is different — *thousands* of concurrent LF / PSA /
//! 2-D-RMSD jobs from many tenants sharing simulated clusters, where (as
//! "Parallel Performance of Molecular Dynamics Trajectory Analysis"
//! observes) contention and stragglers dominate, not kernel speed. This
//! crate is that admission/fair-share layer:
//!
//! * **job descriptors** — a [`JobRequest`] wraps a
//!   [`Workload`](mdtask_core::run::Workload) recipe (not its data) plus
//!   tenant, priority, declared working set and an optional
//!   [`RetryPolicy`] whose `deadline_s` both orders the queue and bounds
//!   the job;
//! * **per-tenant quotas** — enforced through the PR-4 memory ledger:
//!   a tenant's resident working sets never exceed its
//!   [`TenantSpec::quota_bytes`], and per-node reservations go through
//!   [`SimExecutor::try_reserve_memory`];
//! * **weighted fair share** — stride scheduling over tenants
//!   ([`TenantSpec::weight`]), priority-then-deadline-then-FIFO within a
//!   tenant;
//! * **admission control** — generalized from the pilot's working-set
//!   scheme: a job no node can host *now* waits for the next scripted
//!   budget change; only a job no budget can *ever* host is refused;
//! * **backpressure** — bounded per-tenant queues surface
//!   [`EngineError::Rejected`] instead of queueing without bound;
//! * **fault tolerance** — scripted node deaths and budget shrinks kill
//!   or evict resident jobs, which re-enqueue under their own policy
//!   (prompt deadline gate, bounded attempts, typed exhaustion).
//!
//! Everything runs in virtual time on a serial, deterministic event loop;
//! the real analysis kernels execute once per distinct
//! (workload × cluster) pair — fanned across host threads — and the
//! measured virtual makespans drive the schedule, so a service run is
//! bit-identical at any host-thread count when deterministic timing is on
//! (the default).

use mdtask_core::run::{run_workload, RunConfig, Workload};
use netsim::trace::TraceEvent;
use netsim::{parallel, Cluster, EventKind, FaultPlan, RetryPolicy, SimExecutor, SimReport};
use std::collections::HashMap;
use std::sync::Mutex;
use taskframe::{Engine, EngineError};

pub mod chaos;

/// Floor on a job's virtual duration so zero-cost measurements still make
/// progress on the event loop.
const MIN_JOB_S: f64 = 1e-6;

/// Stride-scheduling numerator: a tenant of weight `w` advances its pass
/// by `STRIDE_K / w` per admission, so long-run admission counts are
/// proportional to weights. Wide enough that integer truncation is
/// negligible even for extreme weight ratios: at `w = u32::MAX` the stride
/// is still ≥ 256, and the relative truncation error is below `2^-8` (at
/// the old `1 << 20` a weight of 1000 already mis-shared by 0.05%).
const STRIDE_K: u64 = 1 << 40;

/// The stride accumulators of one service run: per-tenant pass values,
/// lowest-pass-first admission order. Kept overflow-free by rebasing —
/// subtracting the global minimum pass whenever it goes positive — which
/// preserves admission order exactly (only differences ever matter) while
/// bounding every pass by one maximal stride above zero. Without
/// rebasing a weight-1 tenant would wrap `u64` after `2^24` admissions.
#[derive(Clone, Debug)]
struct StrideSched {
    pass: Vec<u64>,
    stride: Vec<u64>,
}

impl StrideSched {
    fn new(weights: &[u32]) -> Self {
        StrideSched {
            pass: vec![0; weights.len()],
            stride: weights
                .iter()
                .map(|&w| (STRIDE_K / w.max(1) as u64).max(1))
                .collect(),
        }
    }

    /// The sort key for admission order: lowest pass first.
    fn pass(&self, tenant: usize) -> u64 {
        self.pass[tenant]
    }

    /// Charge one admission to `tenant`, then rebase.
    fn charge(&mut self, tenant: usize) {
        self.pass[tenant] = self.pass[tenant].saturating_add(self.stride[tenant]);
        if let Some(&m) = self.pass.iter().min() {
            if m > 0 {
                for p in &mut self.pass {
                    *p -= m;
                }
            }
        }
    }

    /// A tenant whose queue drained long ago wakes with a stale low pass;
    /// left alone it would monopolize admissions until it "caught up" on
    /// credit it never queued for, starving everyone else (the classic
    /// stride sleeper flood). Re-join at the current front instead:
    /// lift the waker's pass to the minimum among runnable tenants.
    fn wake(&mut self, tenant: usize, runnable: impl Iterator<Item = usize>) {
        if let Some(m) = runnable
            .filter(|&t| t != tenant)
            .map(|t| self.pass[t])
            .min()
        {
            self.pass[tenant] = self.pass[tenant].max(m);
        }
    }
}

/// One tenant of the service.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Display name (trace/CSV labels).
    pub name: String,
    /// Fair-share weight (≥ 1): long-run admissions are proportional.
    pub weight: u32,
    /// Ledger quota: the tenant's resident working sets, summed across
    /// all clusters, never exceed this.
    pub quota_bytes: u64,
    /// Queue bound: submissions beyond this many queued jobs are refused
    /// with [`EngineError::Rejected`] (backpressure, not buffering).
    pub max_pending: usize,
}

impl TenantSpec {
    pub fn new(name: &str, weight: u32, quota_bytes: u64, max_pending: usize) -> Self {
        assert!(weight >= 1, "fair-share weight must be >= 1");
        assert!(max_pending >= 1, "a tenant must be able to queue one job");
        TenantSpec {
            name: name.to_string(),
            weight,
            quota_bytes,
            max_pending,
        }
    }
}

/// One job submission.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Index into the tenant list passed to [`Service::run`].
    pub tenant: usize,
    /// Virtual submission time.
    pub submit_s: f64,
    /// Higher runs first within the tenant's queue.
    pub priority: u8,
    /// Declared working set, reserved on the hosting node's ledger for
    /// the job's whole execution and counted against the tenant quota.
    pub working_set_bytes: u64,
    /// What to run.
    pub workload: Workload,
    /// Retry/deadline policy; `deadline_s` also sharpens queue order.
    pub policy: RetryPolicy,
}

impl JobRequest {
    pub fn new(tenant: usize, submit_s: f64, workload: Workload) -> Self {
        JobRequest {
            tenant,
            submit_s,
            priority: 0,
            working_set_bytes: 0,
            workload,
            policy: RetryPolicy::new(1),
        }
    }

    pub fn priority(mut self, p: u8) -> Self {
        self.priority = p;
        self
    }

    pub fn working_set(mut self, bytes: u64) -> Self {
        self.working_set_bytes = bytes;
        self
    }

    pub fn policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// How one job ended.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    pub job: usize,
    pub tenant: usize,
    pub submit_s: f64,
    /// First admission time (queue wait = `admit_s - submit_s`); `None`
    /// when the job was refused before ever running.
    pub admit_s: Option<f64>,
    /// Completion (or terminal failure) time.
    pub end_s: Option<f64>,
    /// Cluster that ran the successful attempt.
    pub cluster: Option<usize>,
    /// Attempts beyond the first (deaths, evictions).
    pub retries: u32,
    /// Analysis-output fingerprint on success, typed error otherwise.
    pub result: Result<u64, EngineError>,
}

impl JobOutcome {
    /// Submit-to-completion latency of a successful job.
    pub fn latency_s(&self) -> Option<f64> {
        match (&self.result, self.end_s) {
            (Ok(_), Some(end)) => Some(end - self.submit_s),
            _ => None,
        }
    }
}

/// Per-tenant accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantStats {
    pub submitted: usize,
    pub completed: usize,
    /// Refused before running ([`EngineError::Rejected`]).
    pub rejected: usize,
    /// Admitted but ended in a typed failure.
    pub failed: usize,
    /// Peak of the tenant's simultaneously-resident working sets — the
    /// quota enforcement witness (`<= quota_bytes` always).
    pub mem_high_water: u64,
    /// Total queue wait across first admissions.
    pub queue_wait_s: f64,
}

/// Result of a [`Service::run`]: full `PartialEq` so determinism tests
/// compare entire service runs, control-plane and data-plane included.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Control-plane report: enqueue/admit/reject trace events, recovery
    /// (requeue) windows, retry counters.
    pub control: SimReport,
    /// One data-plane report per cluster: memory ledger high-water,
    /// per-job task events, lost time from killed attempts.
    pub clusters: Vec<SimReport>,
    /// Per-job outcomes, indexed like the submitted batch.
    pub jobs: Vec<JobOutcome>,
    pub tenants: Vec<TenantStats>,
    /// Virtual time when the last job left the system.
    pub makespan_s: f64,
    /// Peak number of simultaneously-executing jobs across all clusters.
    pub peak_concurrent: usize,
}

impl ServiceReport {
    /// Exact p-quantile of successful-job latencies (0 ≤ p ≤ 1), or
    /// `None` when nothing completed.
    pub fn latency_quantile(&self, p: f64) -> Option<f64> {
        let mut lat: Vec<f64> = self.jobs.iter().filter_map(JobOutcome::latency_s).collect();
        if lat.is_empty() {
            return None;
        }
        lat.sort_by(f64::total_cmp);
        let idx = ((lat.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        Some(lat[idx])
    }

    /// Completed jobs per virtual second.
    pub fn throughput_jobs_per_s(&self) -> f64 {
        let done = self.jobs.iter().filter(|j| j.result.is_ok()).count();
        if self.makespan_s > 0.0 {
            done as f64 / self.makespan_s
        } else {
            0.0
        }
    }
}

/// The service: shared clusters + scheduling configuration. Build one,
/// then [`Service::run`] a batch of submissions through it.
#[derive(Clone, Debug)]
pub struct Service {
    clusters: Vec<Cluster>,
    engine: Engine,
    deterministic: bool,
    trace: bool,
}

impl Service {
    /// A service over `clusters`, dispatching jobs to `engine`
    /// (the 2-D-RMSD workload always runs its MPI baseline).
    pub fn new(clusters: Vec<Cluster>, engine: Engine) -> Self {
        assert!(!clusters.is_empty(), "a service needs at least one cluster");
        Service {
            clusters,
            engine,
            deterministic: true,
            trace: false,
        }
    }

    /// Deterministic timing for the workload measurements (default on):
    /// virtual durations come from modelled costs only, so service runs
    /// are bit-identical across hosts and host-thread counts. Turn off to
    /// let measured host time shape the schedule.
    pub fn deterministic(mut self, on: bool) -> Self {
        self.deterministic = on;
        self
    }

    /// Record control-plane (enqueue/admit/reject) and data-plane (task)
    /// traces into the reports.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Run a batch of submissions to completion in virtual time.
    ///
    /// Every submission ends resolved: completed with a fingerprint, or
    /// failed with a typed [`EngineError`] — never silently dropped,
    /// never queued forever (the no-starvation contract).
    pub fn run(
        &self,
        tenants: &[TenantSpec],
        jobs: &[JobRequest],
    ) -> Result<ServiceReport, EngineError> {
        for (i, j) in jobs.iter().enumerate() {
            if j.tenant >= tenants.len() {
                return Err(EngineError::Unsupported(format!(
                    "job {i} names tenant {} but only {} tenants exist",
                    j.tenant,
                    tenants.len()
                )));
            }
            if j.submit_s.is_nan() || j.submit_s < 0.0 {
                return Err(EngineError::Unsupported(format!(
                    "job {i} has invalid submit time {}",
                    j.submit_s
                )));
            }
        }
        let measured = self.measure_workloads(jobs)?;
        Ok(self.schedule(tenants, jobs, &measured))
    }

    /// Execute each distinct (workload, cluster) pair once — the real
    /// kernels, fanned across host threads in deterministic order — and
    /// return virtual duration + output fingerprint per pair.
    #[allow(clippy::type_complexity)]
    fn measure_workloads(
        &self,
        jobs: &[JobRequest],
    ) -> Result<HashMap<(Workload, usize), (f64, u64)>, EngineError> {
        let mut distinct: Vec<Workload> = Vec::new();
        for j in jobs {
            if !distinct.contains(&j.workload) {
                distinct.push(j.workload);
            }
        }
        let pairs: Vec<(Workload, usize)> = distinct
            .iter()
            .flat_map(|w| (0..self.clusters.len()).map(move |c| (*w, c)))
            .collect();
        // The deterministic-timing toggle is process-global; serialize
        // measurement phases so concurrent `Service::run`s (tests, a
        // driver fanning out services) cannot flip it under each other.
        static MEASURE_LOCK: Mutex<()> = Mutex::new(());
        let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = netsim::deterministic_timing();
        netsim::set_deterministic_timing(self.deterministic);
        let outs: Vec<Result<(f64, u64), EngineError>> = parallel::run_indexed(pairs.len(), |i| {
            let (w, c) = pairs[i];
            // Faults are the *service's* concern (deaths kill resident
            // jobs, shrinks evict them); the inner run sees a clean
            // cluster. Serial inner threads: the fan-out above is the
            // parallelism.
            let cluster = self.clusters[c].clone().with_faults(FaultPlan::none());
            let world = cluster.total_cores().min(4);
            let cfg = RunConfig::new(cluster, self.engine)
                .threads(netsim::Threads::Serial)
                .mpi_world(world);
            run_workload(&cfg, &w)
                .map(|out| (out.report.makespan_s.max(MIN_JOB_S), out.fingerprint))
        });
        netsim::set_deterministic_timing(prev);
        let mut measured = HashMap::new();
        for (pair, out) in pairs.into_iter().zip(outs) {
            measured.insert(pair, out?);
        }
        Ok(measured)
    }

    /// The deterministic virtual-time event loop.
    fn schedule(
        &self,
        tenants: &[TenantSpec],
        jobs: &[JobRequest],
        measured: &HashMap<(Workload, usize), (f64, u64)>,
    ) -> ServiceReport {
        let mut st = SchedState::new(self, tenants, jobs, measured);
        // Submissions in time order (stable: ties keep batch order).
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| jobs[a].submit_s.total_cmp(&jobs[b].submit_s));
        let mut next_sub = 0usize;
        let mut now = 0.0f64;
        loop {
            // Next event: submission, completion, requeue eligibility,
            // node death, or budget change.
            let mut t_next = f64::INFINITY;
            if next_sub < order.len() {
                t_next = t_next.min(jobs[order[next_sub]].submit_s);
            }
            for f in &st.inflight {
                t_next = t_next.min(f.end_s);
            }
            for q in &st.queues {
                for e in q {
                    if e.eligible_s > now {
                        t_next = t_next.min(e.eligible_s);
                    }
                }
            }
            for d in &st.deaths {
                if d.0 > now {
                    t_next = t_next.min(d.0);
                    break; // sorted
                }
            }
            if let Some(t) = st.next_partition_event_after(now) {
                t_next = t_next.min(t);
            }
            for c in &self.clusters {
                if let Some(t) = c.next_mem_change_after(now) {
                    t_next = t_next.min(t);
                }
            }
            let queued: usize = st.queues.iter().map(Vec::len).sum();
            if t_next.is_infinite() {
                if queued > 0 {
                    // Nothing in flight, nothing scheduled, nothing ever
                    // changing again: the queued jobs can never run.
                    st.fail_stalled(now);
                }
                break;
            }
            // Events at t=now (admissions freed by this pass) are handled
            // below; otherwise advance.
            now = now.max(t_next);
            st.process_deaths(now);
            st.process_partitions(now);
            st.process_mem_changes(now);
            st.process_completions(now);
            while next_sub < order.len() && jobs[order[next_sub]].submit_s <= now {
                st.submit(order[next_sub], now.max(jobs[order[next_sub]].submit_s));
                next_sub += 1;
            }
            st.admit_all(now);
            let queued: usize = st.queues.iter().map(Vec::len).sum();
            if next_sub >= order.len()
                && st.inflight.is_empty()
                && queued == 0
                && st.zombies.is_empty()
            {
                break;
            }
        }
        st.finish(now)
    }
}

/// A queued job: `eligible_s` is its earliest admissible time (submit
/// time, or observation + backoff after a kill).
#[derive(Clone, Copy, Debug)]
struct QEntry {
    job: usize,
    eligible_s: f64,
    enqueued_s: f64,
}

/// An executing job.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    job: usize,
    cluster: usize,
    node: usize,
    slot: usize,
    start_s: f64,
    end_s: f64,
    ws: u64,
}

struct SchedState<'a> {
    svc: &'a Service,
    tenants: &'a [TenantSpec],
    jobs: &'a [JobRequest],
    /// Virtual duration + output fingerprint per (workload, cluster).
    measured: &'a HashMap<(Workload, usize), (f64, u64)>,
    control: SimExecutor,
    execs: Vec<SimExecutor>,
    /// Per-tenant queues, kept in (priority desc, deadline asc, seq asc)
    /// order.
    queues: Vec<Vec<QEntry>>,
    inflight: Vec<InFlight>,
    /// Stride-scheduling accumulators (pass per tenant, rebased).
    stride: StrideSched,
    /// Attempts started per job.
    attempts: Vec<u32>,
    /// (cluster, node) liveness and busy slots.
    alive: Vec<Vec<bool>>,
    slots: Vec<Vec<Vec<bool>>>,
    /// All scripted deaths, sorted by time; processed ones are marked.
    deaths: Vec<(f64, usize, usize, bool)>,
    /// Attempts the control plane gave up on while their node was merely
    /// cut off: `(attempt, suspected_s, heal_s)`. The attempt is still
    /// computing behind the cut; at heal its stale result arrives and is
    /// fenced, and its slot/ledger are finally reclaimed.
    zombies: Vec<(InFlight, f64, f64)>,
    /// Tenant resident bytes (quota accounting).
    tenant_resident: Vec<u64>,
    outcomes: Vec<JobOutcome>,
    stats: Vec<TenantStats>,
    peak_concurrent: usize,
    last_event_s: f64,
}

impl<'a> SchedState<'a> {
    fn new(
        svc: &'a Service,
        tenants: &'a [TenantSpec],
        jobs: &'a [JobRequest],
        measured: &'a HashMap<(Workload, usize), (f64, u64)>,
    ) -> Self {
        let mk_exec = |cluster: Cluster| {
            let mut e = SimExecutor::new(cluster);
            if svc.trace {
                e.enable_trace();
            }
            e.set_phase("service");
            e
        };
        let control = mk_exec(svc.clusters[0].clone().with_faults(FaultPlan::none()));
        let execs: Vec<SimExecutor> = svc.clusters.iter().map(|c| mk_exec(c.clone())).collect();
        let mut deaths: Vec<(f64, usize, usize, bool)> = Vec::new();
        for (c, cluster) in svc.clusters.iter().enumerate() {
            for d in cluster.faults().deaths() {
                if d.node < cluster.nodes {
                    deaths.push((d.at_s, c, d.node, false));
                }
            }
        }
        deaths.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let alive = svc.clusters.iter().map(|c| vec![true; c.nodes]).collect();
        let slots = svc
            .clusters
            .iter()
            .map(|c| vec![vec![false; c.profile.cores_per_node]; c.nodes])
            .collect();
        let outcomes = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| JobOutcome {
                job: i,
                tenant: j.tenant,
                submit_s: j.submit_s,
                admit_s: None,
                end_s: None,
                cluster: None,
                retries: 0,
                result: Err(EngineError::Unsupported("job never resolved".into())),
            })
            .collect();
        SchedState {
            svc,
            tenants,
            jobs,
            measured,
            control,
            execs,
            queues: vec![Vec::new(); tenants.len()],
            inflight: Vec::new(),
            stride: StrideSched::new(&tenants.iter().map(|t| t.weight).collect::<Vec<_>>()),
            attempts: vec![0; jobs.len()],
            alive,
            slots,
            deaths,
            zombies: Vec::new(),
            tenant_resident: vec![0; tenants.len()],
            outcomes,
            stats: vec![TenantStats::default(); tenants.len()],
            peak_concurrent: 0,
            last_event_s: 0.0,
        }
    }

    /// Largest budget any node could ever offer a job's working set —
    /// the "can this ever run" admission question.
    fn ever_hostable(&self, ws: u64) -> bool {
        if ws == 0 {
            return true;
        }
        self.svc.clusters.iter().any(|c| {
            let cap = c.profile.mem_per_node;
            // A scripted *set* may raise a shrunk budget back, but never
            // above hardware capacity.
            ws <= cap
        })
    }

    fn reject(&mut self, job: usize, at_s: f64, reason: String) {
        let tenant = self.jobs[job].tenant;
        self.control.record_reject(tenant, job, at_s);
        self.stats[tenant].rejected += 1;
        self.outcomes[job].end_s = Some(at_s);
        self.outcomes[job].result = Err(EngineError::Rejected {
            tenant,
            reason,
            at_s,
        });
        self.last_event_s = self.last_event_s.max(at_s);
    }

    /// A submission arrives: backpressure and feasibility checks, then
    /// into the tenant's queue.
    fn submit(&mut self, job: usize, at_s: f64) {
        let req = &self.jobs[job];
        let tenant = req.tenant;
        self.stats[tenant].submitted += 1;
        let spec = &self.tenants[tenant];
        if self.queues[tenant].len() >= spec.max_pending {
            self.reject(
                job,
                at_s,
                format!(
                    "queue full: {} jobs pending, tenant allows {}",
                    self.queues[tenant].len(),
                    spec.max_pending
                ),
            );
            return;
        }
        if req.working_set_bytes > spec.quota_bytes {
            self.reject(
                job,
                at_s,
                format!(
                    "working set {} exceeds tenant quota {}",
                    req.working_set_bytes, spec.quota_bytes
                ),
            );
            return;
        }
        if !self.ever_hostable(req.working_set_bytes) {
            self.reject(
                job,
                at_s,
                format!(
                    "working set {} exceeds every node's capacity",
                    req.working_set_bytes
                ),
            );
            return;
        }
        self.control.record_enqueue(tenant, job, at_s);
        self.enqueue(QEntry {
            job,
            eligible_s: at_s,
            enqueued_s: at_s,
        });
    }

    /// Insert preserving (priority desc, deadline asc, seq asc).
    fn enqueue(&mut self, e: QEntry) {
        let tenant = self.jobs[e.job].tenant;
        if self.queues[tenant].is_empty() {
            let queues = &self.queues;
            self.stride
                .wake(tenant, (0..queues.len()).filter(|&t| !queues[t].is_empty()));
        }
        let key = |j: usize| {
            let req = &self.jobs[j];
            (
                std::cmp::Reverse(req.priority),
                req.policy.deadline_s.unwrap_or(f64::INFINITY),
                j,
            )
        };
        let ke = key(e.job);
        let pos = self.queues[tenant]
            .iter()
            .position(|q| {
                let kq = key(q.job);
                ke.0 < kq.0 || (ke.0 == kq.0 && (ke.1, ke.2) < (kq.1, kq.2))
            })
            .unwrap_or(self.queues[tenant].len());
        self.queues[tenant].insert(pos, e);
    }

    /// Kill every resident job on nodes that die at `now`.
    fn process_deaths(&mut self, now: f64) {
        for i in 0..self.deaths.len() {
            let (at_s, c, node, done) = self.deaths[i];
            if done || at_s > now {
                continue;
            }
            self.deaths[i].3 = true;
            self.alive[c][node] = false;
            let victims: Vec<InFlight> = self
                .inflight
                .iter()
                .copied()
                .filter(|f| f.cluster == c && f.node == node)
                .collect();
            self.inflight
                .retain(|f| !(f.cluster == c && f.node == node));
            for v in victims {
                self.release(&v, at_s);
                self.record_attempt(&v, at_s, true);
                self.execs[c].report_mut().lost_time_s += at_s - v.start_s;
                let policy = self.jobs[v.job].policy;
                self.requeue_killed(v.job, at_s + policy.detection_delay_s);
            }
        }
    }

    /// Can the control plane reach `node` of cluster `c` at `t`? Node 0 is
    /// each cluster's control ingress; a scripted partition that separates
    /// a node from it makes the node unschedulable (and its resident jobs
    /// suspectable) until heal.
    fn reachable(&self, c: usize, node: usize, t: f64) -> bool {
        let faults = self.svc.clusters[c].faults();
        !faults.has_partitions() || faults.can_reach(0, node, t)
    }

    /// Suspicion and reconciliation across scripted network partitions.
    ///
    /// A node behind a cut is *alive*: its resident jobs keep computing,
    /// but their results cannot reach the control plane and their
    /// heartbeats stop. When a job's detector fires while the cut is still
    /// up (a false positive), the control plane requeues the job elsewhere
    /// and the original attempt becomes a zombie holding its slot and
    /// ledger bytes. At heal the zombie's stale completion arrives and is
    /// fenced — counted, never applied — and its resources are reclaimed.
    /// A cut the detector outlives is ridden out: delivery is merely
    /// delayed (see [`Self::process_completions`]).
    fn process_partitions(&mut self, now: f64) {
        // Suspicion pass: zombify in-flight victims whose detector fired.
        let mut i = 0;
        while i < self.inflight.len() {
            let f = self.inflight[i];
            let faults = self.svc.clusters[f.cluster].faults();
            let mut zombified = false;
            if faults.has_partitions() {
                if let Some(det) = self.jobs[f.job].policy.detector() {
                    for p in faults.partitions() {
                        if !p.separates(0, f.node) || p.from_s < f.start_s || p.from_s >= f.end_s {
                            continue;
                        }
                        let suspect = det.suspect_time(p.from_s);
                        if suspect >= p.to_s || suspect > now {
                            continue;
                        }
                        let v = self.inflight.remove(i);
                        self.record_attempt(&v, suspect, true);
                        let rep = self.execs[v.cluster].report_mut();
                        rep.zombie_attempts += 1;
                        rep.zombie_time_s += v.end_s.min(p.to_s) - v.start_s;
                        self.zombies.push((v, suspect, p.to_s));
                        self.requeue_killed(v.job, suspect);
                        zombified = true;
                        break;
                    }
                }
            }
            if !zombified {
                i += 1;
            }
        }
        // Heal pass: reclaim each zombie's slot/ledger and fence its
        // stale result, exactly once.
        let mut z = 0;
        while z < self.zombies.len() {
            let (v, suspect, heal) = self.zombies[z];
            if heal > now {
                z += 1;
                continue;
            }
            self.zombies.remove(z);
            self.release(&v, heal);
            self.control
                .record_fenced("stale-completion", suspect, heal);
        }
    }

    /// Earliest future partition-driven event: a detector firing on an
    /// in-flight job behind a cut, or a heal owing a zombie its fence.
    fn next_partition_event_after(&self, now: f64) -> Option<f64> {
        fn push(cand: f64, t: &mut Option<f64>) {
            *t = Some(t.map_or(cand, |x| x.min(cand)));
        }
        let mut t: Option<f64> = None;
        for f in &self.inflight {
            let faults = self.svc.clusters[f.cluster].faults();
            if !faults.has_partitions() {
                continue;
            }
            let Some(det) = self.jobs[f.job].policy.detector() else {
                continue;
            };
            for p in faults.partitions() {
                if !p.separates(0, f.node) || p.from_s < f.start_s || p.from_s >= f.end_s {
                    continue;
                }
                let suspect = det.suspect_time(p.from_s);
                if suspect < p.to_s && suspect > now {
                    push(suspect, &mut t);
                }
            }
        }
        for &(_, _, heal) in &self.zombies {
            if heal > now {
                push(heal, &mut t);
            }
        }
        t
    }

    /// Evict the newest jobs on any node whose budget no longer holds its
    /// residents (scripted shrinks; scripted sets may instead make queued
    /// work admissible — the admission pass handles that side).
    fn process_mem_changes(&mut self, now: f64) {
        for c in 0..self.svc.clusters.len() {
            for node in 0..self.svc.clusters[c].nodes {
                if !self.alive[c][node] {
                    continue;
                }
                loop {
                    let budget = self.execs[c].mem_budget(node, now);
                    if self.execs[c].mem_resident(node) <= budget {
                        break;
                    }
                    // Newest admission on the node is evicted first.
                    let victim = self
                        .inflight
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| f.cluster == c && f.node == node && f.ws > 0)
                        .max_by(|(_, a), (_, b)| {
                            a.start_s.total_cmp(&b.start_s).then(a.job.cmp(&b.job))
                        })
                        .map(|(i, _)| i);
                    let Some(i) = victim else {
                        break; // residue is not ours to evict
                    };
                    let v = self.inflight.remove(i);
                    self.release(&v, now);
                    self.record_attempt(&v, now, true);
                    self.execs[c].report_mut().lost_time_s += now - v.start_s;
                    self.requeue_killed(v.job, now);
                }
            }
        }
    }

    /// Put a killed job back in its queue (bounded attempts, prompt
    /// deadline gate) or fail it typed.
    fn requeue_killed(&mut self, job: usize, observed_s: f64) {
        let req = &self.jobs[job];
        let policy = req.policy;
        let attempts = self.attempts[job];
        if attempts >= policy.max_attempts {
            self.fail(
                job,
                observed_s,
                EngineError::RetriesExhausted {
                    attempts,
                    last_failure_s: observed_s,
                },
            );
            return;
        }
        let eligible = observed_s + policy.backoff_before(attempts + 1);
        if let Err(e) = policy.deadline_gate(observed_s, eligible) {
            self.fail(job, observed_s, EngineError::from(e));
            return;
        }
        self.control
            .record_recovery("requeue", observed_s, eligible);
        self.control.report_mut().retries += 1;
        self.outcomes[job].retries += 1;
        self.enqueue(QEntry {
            job,
            eligible_s: eligible,
            enqueued_s: observed_s,
        });
    }

    fn fail(&mut self, job: usize, at_s: f64, err: EngineError) {
        let tenant = self.jobs[job].tenant;
        self.stats[tenant].failed += 1;
        self.outcomes[job].end_s = Some(at_s);
        self.outcomes[job].result = Err(err);
        self.last_event_s = self.last_event_s.max(at_s);
    }

    /// Release a job's slot and ledger reservation.
    fn release(&mut self, f: &InFlight, at_s: f64) {
        self.slots[f.cluster][f.node][f.slot] = false;
        if f.ws > 0 {
            self.execs[f.cluster].release_memory(f.node, f.ws);
            let tenant = self.jobs[f.job].tenant;
            self.tenant_resident[tenant] -= f.ws;
        }
        self.last_event_s = self.last_event_s.max(at_s);
    }

    /// Record one execution interval as a task event on the cluster's
    /// data-plane trace.
    fn record_attempt(&mut self, f: &InFlight, end_s: f64, killed: bool) {
        let exec = &mut self.execs[f.cluster];
        let core = f.node * self.svc.clusters[f.cluster].profile.cores_per_node + f.slot;
        let rep = exec.report_mut();
        if let Some(trace) = &mut rep.trace {
            let label = trace.intern(self.jobs[f.job].workload.label());
            let phase = trace.intern("service");
            trace.record(TraceEvent {
                task: trace.next_id(),
                core,
                start_s: f.start_s,
                end_s,
                killed,
                ready_s: f.start_s,
                phase,
                kind: EventKind::Task {
                    label,
                    speculative: false,
                },
            });
        }
    }

    /// Admit as many queued jobs as capacity allows, one at a time, in
    /// stride-scheduled tenant order.
    fn admit_all(&mut self, now: f64) {
        loop {
            // Tenants in stride order: lowest pass first, id tie-break. A
            // blocked tenant (quota, no slot) does not block the others —
            // the scan falls through to the next pass.
            let mut order: Vec<usize> = (0..self.tenants.len())
                .filter(|&t| self.queues[t].iter().any(|e| e.eligible_s <= now))
                .collect();
            order.sort_by_key(|&t| (self.stride.pass(t), t));
            let mut advanced = false;
            for t in order {
                if self.try_admit_tenant(t, now) {
                    // Pass values shifted: re-derive the order.
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
    }

    /// Try to admit the best admissible entry of one tenant's queue.
    fn try_admit_tenant(&mut self, tenant: usize, now: f64) -> bool {
        let spec = &self.tenants[tenant];
        for qi in 0..self.queues[tenant].len() {
            let e = self.queues[tenant][qi];
            if e.eligible_s > now {
                continue;
            }
            let req = &self.jobs[e.job];
            let ws = req.working_set_bytes;
            if self.tenant_resident[tenant].saturating_add(ws) > spec.quota_bytes {
                continue; // quota: wait for the tenant's own jobs to drain
            }
            let Some((c, node, slot)) = self.find_slot(ws, now) else {
                continue;
            };
            // Deadline gate at admission: a job that cannot finish by its
            // deadline fails now instead of occupying a slot uselessly.
            let (dur, fp) = self.measured_for(e.job, c);
            if let Some(deadline) = req.policy.deadline_s {
                if now + dur > deadline {
                    self.queues[tenant].remove(qi);
                    self.fail(
                        e.job,
                        now,
                        EngineError::DeadlineExceeded {
                            deadline_s: deadline,
                            at_s: now,
                        },
                    );
                    return true; // progress was made (the queue shrank)
                }
            }
            self.queues[tenant].remove(qi);
            self.slots[c][node][slot] = true;
            if ws > 0 {
                let ok = self.execs[c].try_reserve_memory(node, ws, now);
                debug_assert!(ok, "find_slot pre-checked the reservation");
                self.tenant_resident[tenant] += ws;
                let st = &mut self.stats[tenant];
                st.mem_high_water = st.mem_high_water.max(self.tenant_resident[tenant]);
            }
            self.attempts[e.job] += 1;
            if self.outcomes[e.job].admit_s.is_none() {
                self.outcomes[e.job].admit_s = Some(now);
                self.stats[tenant].queue_wait_s += now - req.submit_s;
            }
            self.control.record_admit(tenant, e.job, e.enqueued_s, now);
            let f = InFlight {
                job: e.job,
                cluster: c,
                node,
                slot,
                start_s: now,
                end_s: now + dur,
                ws,
            };
            self.inflight.push(f);
            self.peak_concurrent = self.peak_concurrent.max(self.inflight.len());
            // Stash the fingerprint for completion time.
            self.outcomes[e.job].cluster = Some(c);
            self.outcomes[e.job].result = Ok(fp);
            self.stride.charge(tenant);
            return true;
        }
        false
    }

    fn measured_for(&self, job: usize, cluster: usize) -> (f64, u64) {
        // measure_workloads resolved every (workload, cluster) pair that
        // can reach this point; a missing entry is a scheduler bug.
        self.measured
            .get(&(self.jobs[job].workload, cluster))
            .copied()
            .expect("measured duration for admitted job")
    }

    /// First (cluster, node, slot) that can host `ws` bytes right now.
    fn find_slot(&mut self, ws: u64, now: f64) -> Option<(usize, usize, usize)> {
        for c in 0..self.svc.clusters.len() {
            for node in 0..self.svc.clusters[c].nodes {
                if !self.alive[c][node] || !self.reachable(c, node, now) {
                    continue;
                }
                let Some(slot) = self.slots[c][node].iter().position(|b| !b) else {
                    continue;
                };
                if ws > 0 {
                    let budget = self.execs[c].mem_budget(node, now);
                    if self.execs[c].mem_resident(node).saturating_add(ws) > budget {
                        continue;
                    }
                }
                return Some((c, node, slot));
            }
        }
        None
    }

    /// Complete every in-flight job whose end time has passed.
    fn process_completions(&mut self, now: f64) {
        // A result computed behind an active cut cannot reach the control
        // plane until the cut heals: defer delivery, keeping the job in
        // flight (and suspectable) until then.
        for f in self.inflight.iter_mut() {
            if f.end_s <= now {
                let faults = self.svc.clusters[f.cluster].faults();
                if faults.has_partitions() {
                    let reach = faults.earliest_reach(0, f.node, f.end_s);
                    if reach > f.end_s {
                        f.end_s = reach;
                    }
                }
            }
        }
        let done: Vec<InFlight> = self
            .inflight
            .iter()
            .copied()
            .filter(|f| f.end_s <= now)
            .collect();
        self.inflight.retain(|f| f.end_s > now);
        // Deterministic completion order: by (end, job).
        let mut done = done;
        done.sort_by(|a, b| a.end_s.total_cmp(&b.end_s).then(a.job.cmp(&b.job)));
        for f in done {
            self.release(&f, f.end_s);
            self.record_attempt(&f, f.end_s, false);
            let tenant = self.jobs[f.job].tenant;
            self.stats[tenant].completed += 1;
            self.outcomes[f.job].end_s = Some(f.end_s);
            let exec = &mut self.execs[f.cluster];
            let rep = exec.report_mut();
            rep.tasks += 1;
            rep.compute_s += f.end_s - f.start_s;
            rep.makespan_s = rep.makespan_s.max(f.end_s);
        }
    }

    /// Fail every still-queued job: nothing can ever admit them.
    fn fail_stalled(&mut self, now: f64) {
        for t in 0..self.queues.len() {
            let entries: Vec<QEntry> = std::mem::take(&mut self.queues[t]);
            for e in entries {
                self.reject(
                    e.job,
                    now,
                    "stalled: no node can ever admit this job".to_string(),
                );
            }
        }
    }

    fn finish(mut self, now: f64) -> ServiceReport {
        debug_assert!(self.inflight.is_empty(), "jobs left in flight");
        let makespan = self.last_event_s.max(now);
        self.control.report_mut().makespan_s = makespan;
        self.control.report_mut().tasks = self.outcomes.iter().filter(|o| o.result.is_ok()).count();
        ServiceReport {
            control: self.control.into_report(),
            clusters: self
                .execs
                .into_iter()
                .map(SimExecutor::into_report)
                .collect(),
            jobs: self.outcomes,
            tenants: self.stats,
            makespan_s: makespan,
            peak_concurrent: self.peak_concurrent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;

    fn lf(seed: u64) -> Workload {
        Workload::Lf {
            n_atoms: 96,
            partitions: 2,
            seed,
        }
    }

    fn one_node(cores: usize, mem: u64, plan: FaultPlan) -> Cluster {
        Cluster::builder()
            .nodes(1)
            .cores_per_node(cores)
            .mem_budget(mem)
            .fault_plan(plan)
            .build()
    }

    fn tenant(quota: u64, pending: usize) -> TenantSpec {
        TenantSpec::new("t", 1, quota, pending)
    }

    #[test]
    fn jobs_complete_with_queue_accounting_in_the_trace() {
        let svc = Service::new(vec![one_node(2, GIB, FaultPlan::none())], Engine::Dask).trace(true);
        let tenants = [tenant(GIB, 8)];
        let jobs = [
            JobRequest::new(0, 0.0, lf(1)).working_set(64 * MIB),
            JobRequest::new(0, 0.0, lf(1)).working_set(64 * MIB),
            JobRequest::new(0, 0.0, lf(1)).working_set(64 * MIB),
        ];
        let rep = svc.run(&tenants, &jobs).unwrap();
        assert!(rep.jobs.iter().all(|j| j.result.is_ok()), "{:?}", rep.jobs);
        assert_eq!(rep.tenants[0].completed, 3);
        assert_eq!(rep.peak_concurrent, 2, "two slots, three jobs");
        assert!(rep.latency_quantile(0.99).unwrap() > 0.0);
        // Third job waited for a slot: its first admission is later.
        let trace = rep.control.trace.as_ref().unwrap();
        let kinds: Vec<&str> = trace.events.iter().map(|e| e.kind.kind_name()).collect();
        assert_eq!(kinds.iter().filter(|k| **k == "enqueue").count(), 3);
        assert_eq!(kinds.iter().filter(|k| **k == "admit").count(), 3);
        let waited = trace
            .events
            .iter()
            .filter(|e| e.kind.kind_name() == "admit" && e.start_s > e.ready_s)
            .count();
        assert_eq!(waited, 1, "exactly one admission shows queue wait");
    }

    #[test]
    fn backpressure_rejects_typed_when_the_queue_is_full() {
        let svc = Service::new(vec![one_node(2, GIB, FaultPlan::none())], Engine::Spark);
        let tenants = [tenant(GIB, 2)];
        let jobs: Vec<JobRequest> = (0..5)
            .map(|_| JobRequest::new(0, 0.0, lf(2)).working_set(MIB))
            .collect();
        let rep = svc.run(&tenants, &jobs).unwrap();
        assert_eq!(rep.tenants[0].submitted, 5);
        assert_eq!(rep.tenants[0].rejected, 3, "queue bound of 2 holds");
        assert_eq!(rep.tenants[0].completed, 2);
        let rejected: Vec<&JobOutcome> = rep.jobs.iter().filter(|j| j.result.is_err()).collect();
        assert_eq!(rejected.len(), 3);
        for j in rejected {
            match &j.result {
                Err(EngineError::Rejected { tenant, reason, .. }) => {
                    assert_eq!(*tenant, 0);
                    assert!(reason.contains("queue full"), "{reason}");
                }
                other => panic!("expected Rejected, got {other:?}"),
            }
            assert!(j.admit_s.is_none(), "rejected jobs never ran");
        }
    }

    #[test]
    fn tenant_quota_serializes_resident_working_sets() {
        // Two slots and budget for both, but the tenant's quota only
        // covers one 200 MiB working set at a time.
        let svc = Service::new(vec![one_node(2, GIB, FaultPlan::none())], Engine::Dask);
        let tenants = [tenant(300 * MIB, 8)];
        let jobs = [
            JobRequest::new(0, 0.0, lf(3)).working_set(200 * MIB),
            JobRequest::new(0, 0.0, lf(3)).working_set(200 * MIB),
        ];
        let rep = svc.run(&tenants, &jobs).unwrap();
        assert!(rep.jobs.iter().all(|j| j.result.is_ok()));
        assert!(rep.tenants[0].mem_high_water <= 300 * MIB, "quota held");
        let (a0, a1) = (rep.jobs[0].admit_s.unwrap(), rep.jobs[1].admit_s.unwrap());
        assert!(
            (a0 - a1).abs() > 0.0,
            "quota forced the admissions apart: {a0} vs {a1}"
        );
        assert_eq!(rep.peak_concurrent, 1);
    }

    #[test]
    fn infeasible_working_sets_are_refused_up_front() {
        let svc = Service::new(vec![one_node(2, GIB, FaultPlan::none())], Engine::Pilot);
        let tenants = [tenant(8 * GIB, 8)];
        // Larger than any node's hardware capacity: no budget schedule
        // can ever host it.
        let jobs = [JobRequest::new(0, 0.0, lf(4)).working_set(2 * GIB)];
        let rep = svc.run(&tenants, &jobs).unwrap();
        match &rep.jobs[0].result {
            Err(EngineError::Rejected { reason, .. }) => {
                assert!(reason.contains("capacity"), "{reason}")
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        // Larger than the tenant's own quota: also refused at submit.
        let tenants = [tenant(100 * MIB, 8)];
        let jobs = [JobRequest::new(0, 0.0, lf(4)).working_set(200 * MIB)];
        let rep = svc.run(&tenants, &jobs).unwrap();
        match &rep.jobs[0].result {
            Err(EngineError::Rejected { reason, .. }) => {
                assert!(reason.contains("quota"), "{reason}")
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn a_million_admissions_share_exactly_at_weight_1_vs_1000() {
        // Drive the stride accumulators directly for a million
        // admissions at the most truncation-hostile ratio in service
        // configs. Regression for two accumulator bugs: integer
        // truncation of `STRIDE_K / w` skewing long-run shares (0.05%
        // at the old `1 << 20`), and unbounded pass growth overflowing
        // `u64` on long-lived services.
        let mut s = StrideSched::new(&[1, 1000]);
        let total = 1_000_000usize;
        let mut admitted = [0usize; 2];
        let mut last_light = 0usize;
        let mut max_gap = 0usize;
        for i in 0..total {
            let t = (0..2).min_by_key(|&t| (s.pass(t), t)).unwrap();
            admitted[t] += 1;
            if t == 0 {
                max_gap = max_gap.max(i - last_light);
                last_light = i;
            }
            s.charge(t);
            // Overflow-free: rebasing keeps every pass within one
            // maximal stride of zero, at any horizon.
            assert!(s.pass(0) <= STRIDE_K && s.pass(1) <= STRIDE_K);
        }
        let exact_light = total as f64 / 1001.0;
        assert!(
            (admitted[0] as f64 - exact_light).abs() < 2.0,
            "weight-1 tenant got {} admissions, exact share is {exact_light:.3}",
            admitted[0]
        );
        // Starvation-free: the light tenant is served every ~1001
        // admissions, never pushed to the end of the run.
        assert!(
            max_gap <= 1002,
            "light tenant starved for {max_gap} consecutive admissions"
        );
    }

    #[test]
    fn a_waking_tenant_rejoins_at_the_front_instead_of_flooding() {
        // Tenant 0 sleeps while tenant 1 absorbs 100 admissions; waking
        // with its stale pass it would win the next 100 in a row.
        let mut s = StrideSched::new(&[1, 1]);
        for _ in 0..100 {
            s.charge(1);
        }
        s.wake(0, [1].into_iter());
        let mut streak = 0usize;
        let mut worst = 0usize;
        for _ in 0..200 {
            let t = (0..2).min_by_key(|&t| (s.pass(t), t)).unwrap();
            if t == 0 {
                streak += 1;
                worst = worst.max(streak);
            } else {
                streak = 0;
            }
            s.charge(t);
        }
        assert!(
            worst <= 1,
            "woken tenant flooded {worst} consecutive admissions"
        );
    }

    #[test]
    fn fair_share_follows_stride_weights() {
        // One slot, two tenants at weight 4 : 1, a deep backlog each.
        let svc = Service::new(vec![one_node(1, GIB, FaultPlan::none())], Engine::Dask);
        let tenants = [
            TenantSpec::new("heavy", 4, GIB, 32),
            TenantSpec::new("light", 1, GIB, 32),
        ];
        let mut jobs = Vec::new();
        for _ in 0..8 {
            jobs.push(JobRequest::new(0, 0.0, lf(5)).working_set(MIB));
            jobs.push(JobRequest::new(1, 0.0, lf(5)).working_set(MIB));
        }
        let rep = svc.run(&tenants, &jobs).unwrap();
        let mut admitted: Vec<(f64, usize)> = rep
            .jobs
            .iter()
            .map(|j| (j.admit_s.unwrap(), j.tenant))
            .collect();
        admitted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let heavy_in_first_10 = admitted[..10].iter().filter(|(_, t)| *t == 0).count();
        assert_eq!(
            heavy_in_first_10, 8,
            "weight-4 tenant takes 4 of every 5 admissions: {admitted:?}"
        );
    }

    #[test]
    fn priority_then_deadline_orders_a_tenant_queue() {
        // One slot; all four jobs queue at t=0, so admission order is
        // exactly queue order.
        let svc = Service::new(vec![one_node(1, GIB, FaultPlan::none())], Engine::Dask);
        let tenants = [tenant(GIB, 8)];
        let deadline = |d: f64| RetryPolicy::new(1).with_deadline(d);
        let jobs = [
            JobRequest::new(0, 0.0, lf(6)),                       // no deadline
            JobRequest::new(0, 0.0, lf(6)).policy(deadline(1e6)), // late deadline
            JobRequest::new(0, 0.0, lf(6)).policy(deadline(1e5)), // tight deadline
            JobRequest::new(0, 0.0, lf(6)).priority(5),           // priority trumps
        ];
        let rep = svc.run(&tenants, &jobs).unwrap();
        let mut order: Vec<usize> = (0..4).collect();
        order.sort_by(|&a, &b| {
            rep.jobs[a]
                .admit_s
                .unwrap()
                .total_cmp(&rep.jobs[b].admit_s.unwrap())
        });
        assert_eq!(order, vec![3, 2, 1, 0], "priority desc, then deadline asc");
    }

    #[test]
    fn hopeless_deadline_fails_typed_at_admission() {
        let svc = Service::new(vec![one_node(1, GIB, FaultPlan::none())], Engine::Dask);
        let tenants = [tenant(GIB, 8)];
        // No workload finishes in 1 ns of virtual time.
        let jobs = [JobRequest::new(0, 0.0, lf(7)).policy(RetryPolicy::new(1).with_deadline(1e-9))];
        let rep = svc.run(&tenants, &jobs).unwrap();
        match &rep.jobs[0].result {
            Err(EngineError::DeadlineExceeded { deadline_s, .. }) => {
                assert_eq!(*deadline_s, 1e-9)
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(rep.tenants[0].failed, 1);
    }

    #[test]
    fn node_death_requeues_the_victim_and_it_still_completes() {
        // Learn the job duration from a fault-free run, then kill the
        // second node mid-flight.
        let free = Service::new(
            vec![Cluster::builder()
                .nodes(2)
                .cores_per_node(1)
                .mem_budget(GIB)
                .build()],
            Engine::Dask,
        );
        let tenants = [tenant(GIB, 8)];
        let policy = RetryPolicy::new(3).with_detection_delay(0.1);
        let jobs = [
            JobRequest::new(0, 0.0, lf(8)).policy(policy),
            JobRequest::new(0, 0.0, lf(8)).policy(policy),
        ];
        let base = free.run(&tenants, &jobs).unwrap();
        let d = base.jobs[0].end_s.unwrap();
        assert!(d > 0.0);
        let faulty = Service::new(
            vec![Cluster::builder()
                .nodes(2)
                .cores_per_node(1)
                .mem_budget(GIB)
                .fault_plan(FaultPlan::none().kill_node(1, d * 0.5))
                .build()],
            Engine::Dask,
        );
        let rep = faulty.run(&tenants, &jobs).unwrap();
        assert!(rep.jobs.iter().all(|j| j.result.is_ok()), "{:?}", rep.jobs);
        let victim = rep.jobs.iter().find(|j| j.retries > 0).expect("a job died");
        assert!(victim.end_s.unwrap() > d, "the retry cost time");
        assert!(rep.control.retries >= 1);
        assert!(
            rep.clusters[0].lost_time_s > 0.0,
            "killed work is accounted"
        );
    }

    #[test]
    fn suspected_partition_requeues_and_fences_the_zombie_at_heal() {
        // Learn the job duration fault-free, then cut the second node off
        // mid-flight for a long time. The job's detector (beat 0.1s,
        // timeout 0.2s) gives up well before heal: the service requeues
        // the job, the original attempt survives as a zombie, and its
        // stale completion is fenced when the cut heals.
        let mk = |plan: FaultPlan| {
            Service::new(
                vec![Cluster::builder()
                    .nodes(2)
                    .cores_per_node(1)
                    .mem_budget(GIB)
                    .fault_plan(plan)
                    .build()],
                Engine::Dask,
            )
        };
        let tenants = [tenant(GIB, 8)];
        let policy = RetryPolicy::new(3)
            .with_detection_delay(0.1)
            .with_suspicion(0.1, 0.2);
        let jobs = [
            JobRequest::new(0, 0.0, lf(8)).policy(policy),
            JobRequest::new(0, 0.0, lf(8)).policy(policy),
        ];
        let base = mk(FaultPlan::none()).run(&tenants, &jobs).unwrap();
        let d = base.jobs[0].end_s.unwrap();
        assert!(d > 0.0);
        let plan = FaultPlan::none().partition(vec![vec![0], vec![1]], d * 0.5, d * 0.5 + 10.0);
        let rep = mk(plan).run(&tenants, &jobs).unwrap();
        assert!(rep.jobs.iter().all(|j| j.result.is_ok()), "{:?}", rep.jobs);
        let victim = rep
            .jobs
            .iter()
            .find(|j| j.retries > 0)
            .expect("a job was suspected");
        assert!(victim.end_s.unwrap() > d, "the false positive cost time");
        assert_eq!(rep.clusters[0].zombie_attempts, 1, "one zombie attempt");
        assert!(rep.clusters[0].zombie_time_s > 0.0, "wasted work accounted");
        assert_eq!(
            rep.control.fenced_results, 1,
            "the zombie's stale result was fenced exactly once at heal"
        );
        // Outcomes match the fault-free run: same fingerprints, no
        // double-applied completion.
        for (a, b) in rep.jobs.iter().zip(base.jobs.iter()) {
            assert_eq!(a.result.as_ref().ok(), b.result.as_ref().ok());
        }
    }

    #[test]
    fn waited_out_cut_only_delays_delivery() {
        // The cut heals before the detector's timeout elapses: no
        // suspicion, no requeue, no fence — the victim's result is merely
        // delivered at heal.
        let mk = |plan: FaultPlan| {
            Service::new(
                vec![Cluster::builder()
                    .nodes(2)
                    .cores_per_node(1)
                    .mem_budget(GIB)
                    .fault_plan(plan)
                    .build()],
                Engine::Dask,
            )
        };
        let tenants = [tenant(GIB, 8)];
        let policy = RetryPolicy::new(3)
            .with_detection_delay(0.1)
            .with_suspicion(0.1, 0.2);
        let jobs = [
            JobRequest::new(0, 0.0, lf(8)).policy(policy),
            JobRequest::new(0, 0.0, lf(8)).policy(policy),
        ];
        let base = mk(FaultPlan::none()).run(&tenants, &jobs).unwrap();
        let d = base.jobs[0].end_s.unwrap();
        let heal = d * 0.5 + 0.05;
        let plan = FaultPlan::none().partition(vec![vec![0], vec![1]], d * 0.5, heal);
        let rep = mk(plan).run(&tenants, &jobs).unwrap();
        assert!(rep.jobs.iter().all(|j| j.result.is_ok()), "{:?}", rep.jobs);
        assert!(rep.jobs.iter().all(|j| j.retries == 0), "nobody suspected");
        assert_eq!(rep.control.fenced_results, 0);
        assert_eq!(rep.clusters[0].zombie_attempts, 0);
        let delayed = rep.jobs.iter().any(|j| j.end_s.unwrap() >= heal);
        assert!(delayed, "the cut job's delivery waited for heal");
        for (a, b) in rep.jobs.iter().zip(base.jobs.iter()) {
            assert_eq!(a.result.as_ref().ok(), b.result.as_ref().ok());
        }
    }

    #[test]
    fn budget_shrink_evicts_and_scripted_growth_readmits() {
        let tenants = [tenant(GIB, 8)];
        let jobs = [JobRequest::new(0, 0.0, lf(9))
            .working_set(600 * MIB)
            .policy(RetryPolicy::new(3))];
        let free = Service::new(vec![one_node(1, GIB, FaultPlan::none())], Engine::Dask);
        let d = free.run(&tenants, &jobs).unwrap().jobs[0].end_s.unwrap();
        // Shrink below the working set mid-run, restore well after.
        let plan = FaultPlan::none()
            .shrink_memory(0, d * 0.5, 100 * MIB)
            .set_memory(0, d * 4.0, GIB);
        let svc = Service::new(vec![one_node(1, GIB, plan)], Engine::Dask);
        let rep = svc.run(&tenants, &jobs).unwrap();
        assert!(rep.jobs[0].result.is_ok(), "{:?}", rep.jobs[0].result);
        assert_eq!(rep.jobs[0].retries, 1, "evicted once");
        assert!(
            rep.jobs[0].end_s.unwrap() >= d * 4.0,
            "completion waited for the scripted budget growth"
        );
    }

    #[test]
    fn permanent_starvation_resolves_as_typed_rejection() {
        // The budget drops to zero immediately and never recovers: the
        // queued job must fail typed, not hang the loop.
        let plan = FaultPlan::none().shrink_memory(0, 0.0, 0);
        let svc = Service::new(vec![one_node(1, GIB, plan)], Engine::Dask);
        let tenants = [tenant(GIB, 8)];
        let jobs = [JobRequest::new(0, 0.0, lf(10)).working_set(100 * MIB)];
        let rep = svc.run(&tenants, &jobs).unwrap();
        match &rep.jobs[0].result {
            Err(EngineError::Rejected { reason, .. }) => {
                assert!(reason.contains("stalled"), "{reason}")
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn bad_submissions_are_refused_by_the_front_door() {
        let svc = Service::new(vec![one_node(1, GIB, FaultPlan::none())], Engine::Dask);
        let err = svc
            .run(&[tenant(GIB, 8)], &[JobRequest::new(3, 0.0, lf(11))])
            .unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)), "{err}");
        let err = svc
            .run(&[tenant(GIB, 8)], &[JobRequest::new(0, f64::NAN, lf(11))])
            .unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)), "{err}");
    }
}
