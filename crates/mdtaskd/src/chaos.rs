//! Chaos battery for the service: seeded random scenarios — tenant
//! bursts, mid-job node deaths, mid-job budget shrinks and grows — with
//! invariant oracles checked against every run:
//!
//! * **determinism** — the same scenario run twice produces a
//!   bit-identical [`ServiceReport`], and the report is also identical
//!   whether the workload measurements fan out over 1 or several host
//!   threads (virtual time owes nothing to host scheduling);
//! * **no starvation** — every submission resolves: completed with a
//!   fingerprint or failed with a typed [`EngineError`]
//!   (never silently dropped, never queued forever);
//! * **conservation** — per tenant, `submitted = completed + rejected +
//!   failed`, so no job is double-counted or lost between ledgers;
//! * **quota enforcement** — a tenant's peak resident bytes never exceed
//!   its declared quota, whatever the burst pattern or fault schedule;
//! * **termination** — the virtual makespan is finite and every outcome
//!   time is ordered (`submit ≤ admit ≤ end`).
//!
//! Everything is deterministic in `(config, seed)`: a failing seed
//! reproduces exactly.

use crate::{JobRequest, Service, ServiceReport, TenantSpec};
use mdtask_core::run::Workload;
use netsim::{parallel, Cluster, FaultPlan, RetryPolicy, Threads};
use taskframe::{Engine, EngineError};

/// SplitMix64 — the same tiny deterministic generator the netsim chaos
/// harness uses, re-derived here so scenario streams are independent.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct SeedStream(u64);

impl SeedStream {
    fn new(seed: u64) -> Self {
        SeedStream(mix(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.0)
    }

    /// Uniform in `[lo, hi]`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Knobs of the service fuzz sweep.
#[derive(Clone, Debug)]
pub struct ServiceChaosConfig {
    /// First seed; scenario `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Scenarios to generate and run.
    pub scenarios: usize,
    /// Tenants per scenario, drawn from this inclusive range.
    pub tenants: (usize, usize),
    /// Jobs per scenario, drawn from this inclusive range.
    pub jobs: (usize, usize),
    /// Submission times are drawn from `[0, submit_window_s)` — bursts
    /// come from the draw clustering, not a special mode.
    pub submit_window_s: f64,
    /// Probability a scenario's cluster schedules a node death.
    pub death_prob: f64,
    /// Probability of a mid-run budget shrink (followed by a scripted
    /// grow later, half the time — exercising the wait-for-budget path).
    pub shrink_prob: f64,
    /// Also re-run each scenario with workload measurement fanned over
    /// this many host threads and require report equality (1 disables).
    pub check_threads: usize,
}

impl Default for ServiceChaosConfig {
    fn default() -> Self {
        ServiceChaosConfig {
            base_seed: 0,
            scenarios: 10,
            tenants: (2, 4),
            jobs: (10, 24),
            submit_window_s: 20.0,
            death_prob: 0.4,
            shrink_prob: 0.4,
            check_threads: 2,
        }
    }
}

/// One oracle violation: the seed reproduces it exactly.
#[derive(Clone, Debug)]
pub struct ServiceViolation {
    pub seed: u64,
    pub message: String,
}

/// Outcome of a service fuzz sweep.
#[derive(Clone, Debug, Default)]
pub struct ServiceFuzzReport {
    pub scenarios_run: usize,
    pub violations: Vec<ServiceViolation>,
}

impl ServiceFuzzReport {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// JSON artifact for CI.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"scenarios_run\":{},\"passed\":{},\"violations\":[",
            self.scenarios_run,
            self.passed()
        );
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let msg: String = v
                .message
                .chars()
                .map(|c| match c {
                    '"' => "\\\"".to_string(),
                    '\\' => "\\\\".to_string(),
                    '\n' => "\\n".to_string(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32),
                    c => c.to_string(),
                })
                .collect();
            out.push_str(&format!("{{\"seed\":{},\"message\":\"{msg}\"}}", v.seed));
        }
        out.push_str("]}");
        out
    }
}

/// One generated scenario: service + tenants + submissions.
pub struct Scenario {
    pub service: Service,
    pub tenants: Vec<TenantSpec>,
    pub jobs: Vec<JobRequest>,
}

/// Small fixed pool of cheap workloads — real kernels, tiny inputs —
/// so measurement stays fast while jobs still differ in duration.
fn workload_pool() -> Vec<Workload> {
    vec![
        Workload::Lf {
            n_atoms: 96,
            partitions: 2,
            seed: 11,
        },
        Workload::Lf {
            n_atoms: 160,
            partitions: 4,
            seed: 12,
        },
        Workload::Psa {
            n_traj: 3,
            n_frames: 4,
            groups: 2,
            seed: 13,
        },
        Workload::Rmsd {
            n_atoms: 24,
            n_frames: 8,
            slices: 4,
            seed: 14,
        },
        Workload::Contacts {
            n_atoms: 24,
            n_frames: 8,
            slices: 4,
            seed: 15,
        },
    ]
}

/// Generate the scenario for one seed. Deterministic in `(cfg, seed)`.
pub fn scenario_for_seed(cfg: &ServiceChaosConfig, seed: u64) -> Scenario {
    let mut rng = SeedStream::new(seed);
    let gib = 1u64 << 30;
    let nodes = rng.range(2, 3);
    let mut plan = FaultPlan::none();
    if rng.f64() < cfg.death_prob {
        // Kill a non-zero node mid-window; node 0 always survives so the
        // scenario can drain.
        let node = rng.range(1, nodes - 1);
        let at_s = 1.0 + rng.f64() * (cfg.submit_window_s * 2.0);
        plan = plan.kill_node(node, at_s);
    }
    if rng.f64() < cfg.shrink_prob {
        let node = rng.range(0, nodes - 1);
        let at_s = 1.0 + rng.f64() * cfg.submit_window_s;
        plan = plan.shrink_memory(node, at_s, gib / 4);
        if rng.f64() < 0.5 {
            // Budget grows back later: queued jobs should wait, not die.
            plan = plan.set_memory(node, at_s + 10.0 + rng.f64() * 20.0, gib);
        }
    }
    let cluster = Cluster::builder()
        .nodes(nodes)
        .cores_per_node(2)
        .mem_budget(gib)
        .fault_plan(plan)
        .build();
    let engines = [Engine::Spark, Engine::Dask, Engine::Pilot];
    let engine = engines[rng.range(0, engines.len() - 1)];
    let service = Service::new(vec![cluster], engine);
    let n_tenants = rng.range(cfg.tenants.0, cfg.tenants.1);
    let tenants: Vec<TenantSpec> = (0..n_tenants)
        .map(|t| {
            TenantSpec::new(
                &format!("tenant-{t}"),
                rng.range(1, 4) as u32,
                gib / 2 + rng.range(0, 2) as u64 * (gib / 2),
                rng.range(4, 16),
            )
        })
        .collect();
    let pool = workload_pool();
    let n_jobs = rng.range(cfg.jobs.0, cfg.jobs.1);
    let jobs: Vec<JobRequest> = (0..n_jobs)
        .map(|_| {
            let tenant = rng.range(0, n_tenants - 1);
            let submit_s = rng.f64() * cfg.submit_window_s;
            let w = pool[rng.range(0, pool.len() - 1)];
            let mut policy = RetryPolicy::new(rng.range(1, 3) as u32)
                .with_detection_delay(0.5)
                .with_backoff(0.5, 2.0, 4.0);
            if rng.f64() < 0.25 {
                policy = policy.with_deadline(cfg.submit_window_s * (2.0 + rng.f64() * 8.0));
            }
            JobRequest::new(tenant, submit_s, w)
                .priority(rng.range(0, 3) as u8)
                .working_set((64 + rng.range(0, 192) as u64) << 20)
                .policy(policy)
        })
        .collect();
    Scenario {
        service,
        tenants,
        jobs,
    }
}

/// Check every oracle against one scenario's report.
pub fn check_invariants(s: &Scenario, report: &ServiceReport) -> Option<String> {
    if !report.makespan_s.is_finite() || report.makespan_s < 0.0 {
        return Some(format!("non-finite makespan {}", report.makespan_s));
    }
    if report.jobs.len() != s.jobs.len() {
        return Some(format!(
            "report covers {} jobs but {} were submitted",
            report.jobs.len(),
            s.jobs.len()
        ));
    }
    for o in &report.jobs {
        // No starvation: every submission resolves with a time and either
        // a fingerprint or a *typed* error.
        if o.end_s.is_none() {
            return Some(format!("job {} never resolved (no end time)", o.job));
        }
        if let Err(EngineError::Unsupported(m)) = &o.result {
            if m.contains("never resolved") {
                return Some(format!("job {} fell through the scheduler", o.job));
            }
        }
        let end = o.end_s.unwrap();
        if let Some(admit) = o.admit_s {
            if admit + 1e-9 < o.submit_s || end + 1e-9 < admit {
                return Some(format!(
                    "job {} times out of order: submit {} admit {} end {}",
                    o.job, o.submit_s, admit, end
                ));
            }
        }
        if o.result.is_ok() && o.admit_s.is_none() {
            return Some(format!(
                "job {} completed without ever being admitted",
                o.job
            ));
        }
    }
    for (t, st) in report.tenants.iter().enumerate() {
        if st.submitted != st.completed + st.rejected + st.failed {
            return Some(format!(
                "tenant {t} leaks jobs: {} submitted vs {} completed + {} rejected + {} failed",
                st.submitted, st.completed, st.rejected, st.failed
            ));
        }
        if st.mem_high_water > s.tenants[t].quota_bytes {
            return Some(format!(
                "tenant {t} quota violated: peak resident {} over quota {}",
                st.mem_high_water, s.tenants[t].quota_bytes
            ));
        }
    }
    None
}

/// Run the sweep: every scenario is executed twice (determinism oracle),
/// optionally once more under a different host-thread count, and every
/// oracle in [`check_invariants`] is applied.
pub fn fuzz_service(cfg: &ServiceChaosConfig) -> ServiceFuzzReport {
    let mut violations = Vec::new();
    for i in 0..cfg.scenarios {
        let seed = cfg.base_seed + i as u64;
        let s = scenario_for_seed(cfg, seed);
        let first = match s.service.run(&s.tenants, &s.jobs) {
            Ok(r) => r,
            Err(e) => {
                violations.push(ServiceViolation {
                    seed,
                    message: format!("generated scenario was refused: {e}"),
                });
                continue;
            }
        };
        if let Some(message) = check_invariants(&s, &first) {
            violations.push(ServiceViolation { seed, message });
            continue;
        }
        let second = s.service.run(&s.tenants, &s.jobs);
        if second.as_ref() != Ok(&first) {
            violations.push(ServiceViolation {
                seed,
                message: "same scenario, different report (non-determinism)".into(),
            });
            continue;
        }
        if cfg.check_threads > 1 {
            let threaded = parallel::with_degree(Threads::Fixed(cfg.check_threads), || {
                s.service.run(&s.tenants, &s.jobs)
            });
            if threaded.as_ref() != Ok(&first) {
                violations.push(ServiceViolation {
                    seed,
                    message: format!(
                        "report changed when measured over {} host threads",
                        cfg.check_threads
                    ),
                });
            }
        }
    }
    ServiceFuzzReport {
        scenarios_run: cfg.scenarios,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_well_formed() {
        let cfg = ServiceChaosConfig::default();
        for i in 0..50 {
            let seed = cfg.base_seed + i;
            let a = scenario_for_seed(&cfg, seed);
            let b = scenario_for_seed(&cfg, seed);
            assert_eq!(a.tenants, b.tenants, "same seed, same tenants");
            assert_eq!(a.jobs, b.jobs, "same seed, same jobs");
            assert!(!a.tenants.is_empty() && !a.jobs.is_empty());
            for j in &a.jobs {
                assert!(j.tenant < a.tenants.len());
                assert!(j.submit_s >= 0.0);
            }
        }
    }

    #[test]
    fn battery_passes_and_is_reproducible() {
        let cfg = ServiceChaosConfig {
            scenarios: 6,
            ..Default::default()
        };
        let a = fuzz_service(&cfg);
        assert!(
            a.passed(),
            "service chaos battery found a violation: {:?}",
            a.violations.first()
        );
        let b = fuzz_service(&cfg);
        assert_eq!(a.to_json(), b.to_json(), "byte-identical fuzz reports");
    }
}
