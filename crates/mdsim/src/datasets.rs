//! Named constructors for every dataset in the paper's evaluation, with a
//! `scale` divisor so laptop runs preserve the *relative* shape.
//!
//! PSA (Fig. 4–6): ensembles of 128/256 trajectories, 102 frames each, atom
//! counts small = 3341, medium = 6682, large = 13364.
//!
//! Leaflet Finder (Fig. 7–9): bilayers of 131k/262k/524k/4M atoms whose
//! cutoff graphs carry 896k/1.75M/3.52M/44.6M edges.

use crate::bilayer::{self, Bilayer, BilayerSpec};
use crate::chain::{self, ChainSpec, Trajectory};

/// Paper PSA trajectory atom counts (small, medium, large).
pub const PSA_PAPER_ATOMS: [usize; 3] = [3341, 6682, 13364];
/// Paper PSA trajectory frame count.
pub const PSA_PAPER_FRAMES: usize = 102;
/// Paper Leaflet Finder system sizes.
pub const LF_PAPER_ATOMS: [usize; 4] = [131_072, 262_144, 524_288, 4_000_000];

/// PSA trajectory size class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PsaSize {
    /// 3341 atoms/frame.
    Small,
    /// 6682 atoms/frame.
    Medium,
    /// 13364 atoms/frame.
    Large,
}

impl PsaSize {
    pub const ALL: [PsaSize; 3] = [PsaSize::Small, PsaSize::Medium, PsaSize::Large];

    /// Paper atom count for this class.
    pub fn paper_atoms(self) -> usize {
        match self {
            PsaSize::Small => PSA_PAPER_ATOMS[0],
            PsaSize::Medium => PSA_PAPER_ATOMS[1],
            PsaSize::Large => PSA_PAPER_ATOMS[2],
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            PsaSize::Small => "small",
            PsaSize::Medium => "medium",
            PsaSize::Large => "large",
        }
    }
}

/// Leaflet Finder dataset identifier (by paper atom count).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LfDatasetId {
    Atoms131k,
    Atoms262k,
    Atoms524k,
    Atoms4M,
}

impl LfDatasetId {
    pub const ALL: [LfDatasetId; 4] = [
        LfDatasetId::Atoms131k,
        LfDatasetId::Atoms262k,
        LfDatasetId::Atoms524k,
        LfDatasetId::Atoms4M,
    ];

    /// Paper atom count.
    pub fn paper_atoms(self) -> usize {
        match self {
            LfDatasetId::Atoms131k => LF_PAPER_ATOMS[0],
            LfDatasetId::Atoms262k => LF_PAPER_ATOMS[1],
            LfDatasetId::Atoms524k => LF_PAPER_ATOMS[2],
            LfDatasetId::Atoms4M => LF_PAPER_ATOMS[3],
        }
    }

    /// Paper cutoff-graph edge count (for validation of the generator's
    /// density tuning).
    pub fn paper_edges(self) -> u64 {
        match self {
            LfDatasetId::Atoms131k => 896_000,
            LfDatasetId::Atoms262k => 1_750_000,
            LfDatasetId::Atoms524k => 3_520_000,
            LfDatasetId::Atoms4M => 44_600_000,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            LfDatasetId::Atoms131k => "131k",
            LfDatasetId::Atoms262k => "262k",
            LfDatasetId::Atoms524k => "524k",
            LfDatasetId::Atoms4M => "4M",
        }
    }
}

/// Generate a PSA ensemble: `count` trajectories of the given size class,
/// atoms divided by `scale` (>= 1; `scale = 1` is paper-sized). Frame count
/// is never scaled — the 102-frame time axis is structural.
pub fn psa_ensemble(size: PsaSize, count: usize, scale: usize, seed: u64) -> Vec<Trajectory> {
    assert!(scale >= 1, "scale must be >= 1");
    let n_atoms = (size.paper_atoms() / scale).max(8);
    let spec = ChainSpec {
        n_atoms,
        n_frames: PSA_PAPER_FRAMES,
        stride: 1,
        ..ChainSpec::default()
    };
    chain::generate_ensemble(&spec, count, seed)
}

/// Generate a Leaflet Finder bilayer, atoms divided by `scale`.
///
/// The 4M-atom system keeps its higher areal edge density (the paper's 4M
/// system has ≈22 neighbors/atom vs ≈14 for the others) by shrinking the
/// lattice spacing relative to the cutoff.
pub fn lf_dataset(id: LfDatasetId, scale: usize, seed: u64) -> Bilayer {
    assert!(scale >= 1, "scale must be >= 1");
    let n_atoms = (id.paper_atoms() / scale).max(64);
    let spacing = match id {
        // ≈ π(2.1)² / 2 ≈ 6.9 edges/atom — matches 896k/131k etc.
        LfDatasetId::Atoms131k | LfDatasetId::Atoms262k | LfDatasetId::Atoms524k => 1.0,
        // ≈ 22 edges/atom for the 4M system (44.6M/4M ≈ 11 ⇒ degree ≈ 22).
        LfDatasetId::Atoms4M => 0.79,
    };
    let spec = BilayerSpec {
        n_atoms,
        spacing,
        ..BilayerSpec::default()
    };
    let mut b = bilayer::generate(&spec, seed);
    // The cutoff is fixed by the physics (leaflet assignment threshold),
    // not by the lattice; keep it constant across datasets.
    b.suggested_cutoff = 2.1;
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psa_sizes_scale() {
        let e = psa_ensemble(PsaSize::Small, 2, 10, 1);
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].n_atoms(), 334);
        assert_eq!(e[0].n_frames(), 102);
    }

    #[test]
    fn psa_paper_scale_constants() {
        assert_eq!(
            PsaSize::Medium.paper_atoms(),
            2 * PsaSize::Small.paper_atoms()
        );
        assert_eq!(
            PsaSize::Large.paper_atoms(),
            4 * PsaSize::Small.paper_atoms()
        );
    }

    #[test]
    fn lf_dataset_scales_and_is_deterministic() {
        let a = lf_dataset(LfDatasetId::Atoms131k, 64, 3);
        let b = lf_dataset(LfDatasetId::Atoms131k, 64, 3);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.n_atoms(), 131_072 / 64);
    }

    #[test]
    fn lf_edge_density_matches_paper_ratio() {
        // Generated edge/atom ratio should be within 40% of the paper's.
        for id in [LfDatasetId::Atoms131k, LfDatasetId::Atoms4M] {
            let b = lf_dataset(id, 256, 7);
            let edges =
                linalg::edges_within_cutoff(&b.positions, &b.positions, b.suggested_cutoff, true);
            let got = edges.len() as f64 / b.n_atoms() as f64;
            let want = id.paper_edges() as f64 / id.paper_atoms() as f64;
            let ratio = got / want;
            assert!(
                (0.6..=1.4).contains(&ratio),
                "{}: got {got:.2} edges/atom, paper {want:.2}",
                id.label()
            );
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(LfDatasetId::Atoms4M.label(), "4M");
        assert_eq!(PsaSize::Large.label(), "large");
    }
}
