//! A Lennard-Jones fluid with velocity-Verlet integration — a second,
//! physically-grounded trajectory source (the chain generator is
//! Brownian; this one is Hamiltonian), useful for datasets whose dynamics
//! must conserve energy and momentum.
//!
//! Reduced units (ε = σ = m = 1), cutoff-truncated potential, cell-list
//! accelerated force evaluation via `linalg` distances. No periodic
//! boundaries: the system is a self-bound droplet prepared on a lattice
//! with a small thermal kick.

use crate::chain::Trajectory;
use linalg::{Frame, Vec3};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Simulation parameters (reduced units).
#[derive(Clone, Debug)]
pub struct LjSpec {
    /// Particle count (rounded up to a cubic lattice).
    pub n_atoms: usize,
    /// Stored frames.
    pub n_frames: usize,
    /// Integration steps between stored frames.
    pub stride: usize,
    /// Time step (0.001–0.005 is stable for LJ).
    pub dt: f64,
    /// Initial lattice spacing (σ units); ~1.1 is near the LJ minimum.
    pub spacing: f64,
    /// Initial velocity scale (temperature kick).
    pub v0: f64,
    /// Interaction cutoff (σ units).
    pub cutoff: f64,
}

impl Default for LjSpec {
    fn default() -> Self {
        LjSpec {
            n_atoms: 64,
            n_frames: 10,
            stride: 10,
            dt: 0.002,
            spacing: 1.12,
            v0: 0.1,
            cutoff: 2.5,
        }
    }
}

/// LJ pair force magnitude / r and potential, truncated at `cutoff`.
/// Returns `(dU/dr / r, U)` so `F = -(dU/dr / r) * r_vec`.
fn lj_pair(r2: f64, cutoff: f64) -> (f64, f64) {
    if r2 >= cutoff * cutoff || r2 <= 1e-12 {
        return (0.0, 0.0);
    }
    let inv_r2 = 1.0 / r2;
    let s6 = inv_r2 * inv_r2 * inv_r2;
    let s12 = s6 * s6;
    // U = 4(s12 - s6); dU/dr / r = (-48 s12 + 24 s6) / r².
    let dudr_over_r = (-48.0 * s12 + 24.0 * s6) * inv_r2;
    (dudr_over_r, 4.0 * (s12 - s6))
}

/// State of a running simulation.
pub struct LjSystem {
    pub positions: Vec<Vec3>,
    pub velocities: Vec<[f64; 3]>,
    spec: LjSpec,
}

impl LjSystem {
    /// Prepare a cubic-lattice droplet with zero net momentum.
    pub fn new(spec: LjSpec, seed: u64) -> Self {
        assert!(spec.n_atoms > 0 && spec.dt > 0.0 && spec.cutoff > 0.0);
        let side = (spec.n_atoms as f64).cbrt().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut positions = Vec::with_capacity(spec.n_atoms);
        'fill: for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    if positions.len() == spec.n_atoms {
                        break 'fill;
                    }
                    positions.push(Vec3::new(
                        x as f32 * spec.spacing as f32,
                        y as f32 * spec.spacing as f32,
                        z as f32 * spec.spacing as f32,
                    ));
                }
            }
        }
        let mut velocities: Vec<[f64; 3]> = (0..spec.n_atoms)
            .map(|_| {
                [
                    rng.gen_range(-spec.v0..=spec.v0),
                    rng.gen_range(-spec.v0..=spec.v0),
                    rng.gen_range(-spec.v0..=spec.v0),
                ]
            })
            .collect();
        // Remove centre-of-mass drift.
        let n = spec.n_atoms as f64;
        let mean = velocities.iter().fold([0.0; 3], |m, v| {
            [m[0] + v[0] / n, m[1] + v[1] / n, m[2] + v[2] / n]
        });
        for v in &mut velocities {
            for d in 0..3 {
                v[d] -= mean[d];
            }
        }
        LjSystem {
            positions,
            velocities,
            spec,
        }
    }

    /// Forces (and total potential energy) with a cell-list neighbour scan.
    pub fn forces(&self) -> (Vec<[f64; 3]>, f64) {
        let n = self.positions.len();
        let mut f = vec![[0.0f64; 3]; n];
        let mut pot = 0.0;
        let grid = neighbors_grid(&self.positions, self.spec.cutoff as f32);
        for (i, j) in grid {
            let (pi, pj) = (self.positions[i as usize], self.positions[j as usize]);
            let dx = pi.x as f64 - pj.x as f64;
            let dy = pi.y as f64 - pj.y as f64;
            let dz = pi.z as f64 - pj.z as f64;
            let r2 = dx * dx + dy * dy + dz * dz;
            let (g, u) = lj_pair(r2, self.spec.cutoff);
            pot += u;
            let (fx, fy, fz) = (-g * dx, -g * dy, -g * dz);
            f[i as usize][0] += fx;
            f[i as usize][1] += fy;
            f[i as usize][2] += fz;
            f[j as usize][0] -= fx;
            f[j as usize][1] -= fy;
            f[j as usize][2] -= fz;
        }
        (f, pot)
    }

    /// One velocity-Verlet step; returns `(kinetic, potential)` energies
    /// after the step.
    pub fn step(&mut self, forces: &mut Vec<[f64; 3]>) -> (f64, f64) {
        let dt = self.spec.dt;
        // Half kick + drift.
        for (i, p) in self.positions.iter_mut().enumerate() {
            for (v, fd) in self.velocities[i].iter_mut().zip(forces[i]) {
                *v += 0.5 * dt * fd;
            }
            p.x += (dt * self.velocities[i][0]) as f32;
            p.y += (dt * self.velocities[i][1]) as f32;
            p.z += (dt * self.velocities[i][2]) as f32;
        }
        // New forces + second half kick.
        let (new_f, pot) = self.forces();
        *forces = new_f;
        let mut kin = 0.0;
        for (i, v) in self.velocities.iter_mut().enumerate() {
            for (vd, fd) in v.iter_mut().zip(forces[i]) {
                *vd += 0.5 * dt * fd;
                kin += 0.5 * *vd * *vd;
            }
        }
        (kin, pot)
    }

    /// Total linear momentum (conserved by Newton's third law).
    pub fn momentum(&self) -> [f64; 3] {
        self.velocities
            .iter()
            .fold([0.0; 3], |m, v| [m[0] + v[0], m[1] + v[1], m[2] + v[2]])
    }
}

/// Neighbour pairs within the cutoff via the cell-list grid, falling back
/// to all-pairs when the droplet has evaporated into a sparse cloud.
fn neighbors_grid(positions: &[Vec3], cutoff: f32) -> Vec<(u32, u32)> {
    linalg::edges_within_cutoff(positions, positions, cutoff, true)
}

/// Run an LJ trajectory deterministically.
pub fn generate(spec: &LjSpec, seed: u64) -> Trajectory {
    let mut sys = LjSystem::new(spec.clone(), seed);
    let (mut forces, _) = sys.forces();
    let mut frames = Vec::with_capacity(spec.n_frames);
    frames.push(Frame::new(sys.positions.clone()));
    for _ in 1..spec.n_frames {
        for _ in 0..spec.stride {
            sys.step(&mut forces);
        }
        frames.push(Frame::new(sys.positions.clone()));
    }
    Trajectory { frames }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_potential_minimum_near_two_to_one_sixth() {
        // dU/dr = 0 at r = 2^(1/6).
        let r_min = 2.0f64.powf(1.0 / 6.0);
        let (g, u) = lj_pair(r_min * r_min, 10.0);
        assert!(g.abs() < 1e-9, "force at the minimum: {g}");
        assert!((u + 1.0).abs() < 1e-9, "depth at the minimum: {u}");
    }

    #[test]
    fn forces_are_pairwise_antisymmetric() {
        let sys = LjSystem::new(
            LjSpec {
                n_atoms: 27,
                ..Default::default()
            },
            3,
        );
        let (f, _) = sys.forces();
        let total = f.iter().fold([0.0f64; 3], |m, fi| {
            [m[0] + fi[0], m[1] + fi[1], m[2] + fi[2]]
        });
        for d in total {
            assert!(d.abs() < 1e-9, "net force must vanish: {total:?}");
        }
    }

    #[test]
    fn momentum_conserved_over_dynamics() {
        let spec = LjSpec {
            n_atoms: 32,
            n_frames: 4,
            stride: 20,
            ..Default::default()
        };
        let mut sys = LjSystem::new(spec, 7);
        let p0 = sys.momentum();
        let (mut f, _) = sys.forces();
        for _ in 0..60 {
            sys.step(&mut f);
        }
        let p1 = sys.momentum();
        for d in 0..3 {
            assert!(
                (p1[d] - p0[d]).abs() < 1e-9,
                "momentum drift: {p0:?} -> {p1:?}"
            );
        }
    }

    #[test]
    fn energy_drift_is_small() {
        let spec = LjSpec {
            n_atoms: 27,
            dt: 0.002,
            ..Default::default()
        };
        let mut sys = LjSystem::new(spec, 11);
        let (mut f, pot0) = sys.forces();
        let kin0: f64 = sys.velocities.iter().flatten().map(|v| 0.5 * v * v).sum();
        let e0 = kin0 + pot0;
        let mut e_last = e0;
        for _ in 0..200 {
            let (k, p) = sys.step(&mut f);
            e_last = k + p;
        }
        let scale = e0.abs().max(1.0);
        assert!(
            ((e_last - e0) / scale).abs() < 0.05,
            "NVE energy drift too large: {e0} -> {e_last}"
        );
    }

    #[test]
    fn trajectory_shape_and_determinism() {
        let spec = LjSpec {
            n_atoms: 20,
            n_frames: 5,
            stride: 5,
            ..Default::default()
        };
        let a = generate(&spec, 9);
        let b = generate(&spec, 9);
        assert_eq!(a, b);
        assert_eq!(a.n_frames(), 5);
        assert_eq!(a.n_atoms(), 20);
        // The kick must actually move atoms.
        assert!(linalg::frame_rmsd(&a.frames[0], &a.frames[4]) > 1e-4);
    }
}
