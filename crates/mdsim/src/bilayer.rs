//! Lipid-bilayer builder for the Leaflet Finder experiments.
//!
//! Produces two flat, locally-parallel sheets of lipid head-group particles
//! ("leaflets") separated by a gap larger than the analysis cutoff, each
//! sheet a jittered square lattice whose spacing keeps it internally
//! connected. The Leaflet Finder must recover exactly two giant connected
//! components — the ground truth is known by construction, which the
//! integration tests exploit.
//!
//! With spacing `s`, cutoff `c` and small jitter, the expected cutoff-graph
//! degree is ≈ π c²/s²; the default `c/s ≈ 2.1` reproduces the paper's
//! edge-to-atom ratio (896k edges / 131k atoms ≈ 6.8 edges per atom).

use linalg::Vec3;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters for a synthetic bilayer.
#[derive(Clone, Debug)]
pub struct BilayerSpec {
    /// Total head-group particles across both leaflets.
    pub n_atoms: usize,
    /// In-plane lattice spacing (Å).
    pub spacing: f32,
    /// Out-of-plane separation between the two leaflets (Å). Must exceed
    /// the analysis cutoff or the leaflets fuse into one component.
    pub gap: f32,
    /// Positional jitter amplitude (Å), uniform in each axis.
    pub jitter: f32,
}

impl Default for BilayerSpec {
    fn default() -> Self {
        BilayerSpec {
            n_atoms: 1024,
            spacing: 1.0,
            gap: 5.0,
            jitter: 0.15,
        }
    }
}

/// A generated bilayer: particle positions plus ground-truth leaflet
/// membership.
#[derive(Clone, Debug)]
pub struct Bilayer {
    pub positions: Vec<Vec3>,
    /// `true` = upper leaflet, index-aligned with `positions`.
    pub upper: Vec<bool>,
    /// The cutoff the spec was tuned for (spacing-derived).
    pub suggested_cutoff: f32,
}

impl Bilayer {
    /// Atom count.
    pub fn n_atoms(&self) -> usize {
        self.positions.len()
    }

    /// Ground-truth leaflet sizes `(upper, lower)`.
    pub fn leaflet_sizes(&self) -> (usize, usize) {
        let up = self.upper.iter().filter(|&&u| u).count();
        (up, self.positions.len() - up)
    }

    /// In-memory coordinate payload in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.positions.len() * std::mem::size_of::<Vec3>()) as u64
    }
}

/// Build a bilayer deterministically from `seed`.
///
/// Atoms `0..n/2` form the upper leaflet, the rest the lower — but the
/// returned order is shuffled so partition blocks mix leaflets, as real
/// trajectory files do (atom order follows molecule topology, not
/// geometry).
pub fn generate(spec: &BilayerSpec, seed: u64) -> Bilayer {
    assert!(spec.n_atoms >= 2, "bilayer needs at least two atoms");
    assert!(spec.spacing > 0.0, "spacing must be positive");
    assert!(
        spec.gap > 2.0 * spec.jitter,
        "gap must exceed jitter or leaflets may interpenetrate"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let per_leaflet = spec.n_atoms / 2;
    let side = (per_leaflet as f64).sqrt().ceil() as usize;

    let mut positions = Vec::with_capacity(spec.n_atoms);
    let mut upper = Vec::with_capacity(spec.n_atoms);
    for (leaflet, z0, is_upper) in [(0usize, spec.gap / 2.0, true), (1, -spec.gap / 2.0, false)] {
        let count = if leaflet == 0 {
            per_leaflet
        } else {
            spec.n_atoms - per_leaflet
        };
        for k in 0..count {
            let ix = (k % side) as f32;
            let iy = (k / side) as f32;
            let j = |r: &mut StdRng| r.gen_range(-spec.jitter..=spec.jitter);
            positions.push(Vec3::new(
                ix * spec.spacing + j(&mut rng),
                iy * spec.spacing + j(&mut rng),
                z0 + j(&mut rng),
            ));
            upper.push(is_upper);
        }
    }

    // Shuffle so file/partition order does not correlate with geometry.
    let mut order: Vec<usize> = (0..positions.len()).collect();
    order.shuffle(&mut rng);
    let positions = order.iter().map(|&i| positions[i]).collect();
    let upper = order.iter().map(|&i| upper[i]).collect();

    Bilayer {
        positions,
        upper,
        suggested_cutoff: spec.spacing * 2.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_check::two_components;

    /// Tiny local CC check to avoid a dev-dependency cycle with graphops.
    mod graph_check {
        use linalg::Vec3;

        pub fn two_components(pts: &[Vec3], cutoff: f32) -> bool {
            let n = pts.len();
            let mut label = vec![usize::MAX; n];
            let mut count = 0;
            let c2 = cutoff * cutoff;
            let mut stack = Vec::new();
            for s in 0..n {
                if label[s] != usize::MAX {
                    continue;
                }
                label[s] = count;
                stack.push(s);
                while let Some(v) = stack.pop() {
                    for w in 0..n {
                        if label[w] == usize::MAX && pts[v].dist2(pts[w]) <= c2 {
                            label[w] = count;
                            stack.push(w);
                        }
                    }
                }
                count += 1;
            }
            count == 2
        }
    }

    #[test]
    fn shape_and_ground_truth() {
        let b = generate(
            &BilayerSpec {
                n_atoms: 200,
                ..Default::default()
            },
            1,
        );
        assert_eq!(b.n_atoms(), 200);
        let (up, lo) = b.leaflet_sizes();
        assert_eq!(up + lo, 200);
        assert!(up.abs_diff(lo) <= 1);
    }

    #[test]
    fn deterministic() {
        let spec = BilayerSpec {
            n_atoms: 128,
            ..Default::default()
        };
        let a = generate(&spec, 5);
        let b = generate(&spec, 5);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.upper, b.upper);
    }

    #[test]
    fn cutoff_graph_has_exactly_two_components() {
        let b = generate(
            &BilayerSpec {
                n_atoms: 256,
                ..Default::default()
            },
            9,
        );
        assert!(two_components(&b.positions, b.suggested_cutoff));
    }

    #[test]
    fn leaflets_are_separated_in_z() {
        let b = generate(
            &BilayerSpec {
                n_atoms: 100,
                ..Default::default()
            },
            2,
        );
        for (p, &u) in b.positions.iter().zip(&b.upper) {
            if u {
                assert!(p.z > 1.0, "upper atom at z={}", p.z);
            } else {
                assert!(p.z < -1.0, "lower atom at z={}", p.z);
            }
        }
    }

    #[test]
    fn odd_atom_counts_work() {
        let b = generate(
            &BilayerSpec {
                n_atoms: 101,
                ..Default::default()
            },
            3,
        );
        assert_eq!(b.n_atoms(), 101);
        let (up, lo) = b.leaflet_sizes();
        assert_eq!(up, 50);
        assert_eq!(lo, 51);
    }

    #[test]
    #[should_panic]
    fn degenerate_spec_panics() {
        generate(
            &BilayerSpec {
                n_atoms: 1,
                ..Default::default()
            },
            0,
        );
    }
}
