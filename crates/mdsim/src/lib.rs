//! Synthetic molecular-dynamics systems.
//!
//! The paper's datasets come from real simulations we do not have:
//! trajectory ensembles of 3341/6682/13364 atoms × 102 frames (PSA,
//! Fig. 4–6) and lipid bilayers of 131k/262k/524k/4M atoms with
//! 896k/1.75M/3.52M/44.6M cutoff-graph edges (Leaflet Finder, Fig. 7–9).
//! This crate generates statistically equivalent stand-ins:
//!
//! * [`chain`] — protein-like chains evolved by Brownian dynamics, giving
//!   trajectory ensembles with the paper's atom/frame counts;
//! * [`bilayer`] — two flat, locally-parallel leaflets of head-group
//!   particles with thermal jitter, tuned so the cutoff graph has exactly
//!   two giant connected components and an edge density matching the
//!   paper's reported edge counts;
//! * [`datasets`] — named constructors for every dataset the paper uses,
//!   with a `scale` knob for laptop-sized runs.
//!
//! All generation is deterministic given a seed.

pub mod bilayer;
pub mod chain;
pub mod datasets;
pub mod lj;

pub use bilayer::{Bilayer, BilayerSpec};
pub use chain::{ChainSpec, Trajectory};
pub use datasets::{
    lf_dataset, psa_ensemble, LfDatasetId, PsaSize, LF_PAPER_ATOMS, PSA_PAPER_ATOMS,
    PSA_PAPER_FRAMES,
};
pub use lj::{LjSpec, LjSystem};
