//! Protein-like chains and their Brownian-dynamics trajectories.
//!
//! A chain is a self-avoiding-ish random walk of `n_atoms` beads with fixed
//! bond length; a trajectory evolves the chain by overdamped Langevin
//! (Brownian) dynamics with harmonic bonds. The result is a time series of
//! frames with realistic spatial correlation — exactly the input shape the
//! PSA pipeline consumes ("trajectories are time series of atom positions",
//! §1).

use linalg::{Frame, Vec3};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters for generating one trajectory.
#[derive(Clone, Debug)]
pub struct ChainSpec {
    /// Beads per frame.
    pub n_atoms: usize,
    /// Frames in the trajectory (the paper's ensembles use 102).
    pub n_frames: usize,
    /// Equilibrium bond length between consecutive beads (Å).
    pub bond_length: f32,
    /// Bond stiffness for the harmonic restoring force.
    pub stiffness: f32,
    /// Thermal noise amplitude per step (Å).
    pub temperature: f32,
    /// Integration steps between stored frames.
    pub stride: usize,
}

impl Default for ChainSpec {
    fn default() -> Self {
        ChainSpec {
            n_atoms: 100,
            n_frames: 102,
            bond_length: 3.8, // Cα–Cα distance
            stiffness: 0.5,
            temperature: 0.3,
            stride: 5,
        }
    }
}

/// A time series of frames — the object PSA compares.
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    pub frames: Vec<Frame>,
}

impl Trajectory {
    pub fn n_frames(&self) -> usize {
        self.frames.len()
    }

    pub fn n_atoms(&self) -> usize {
        self.frames.first().map_or(0, Frame::n_atoms)
    }

    /// In-memory size — drives staging/shuffle byte accounting.
    pub fn size_bytes(&self) -> u64 {
        (self.n_frames() * self.n_atoms() * std::mem::size_of::<Vec3>()) as u64
    }
}

/// A trajectory on the wire is its frame sequence — lets the generic
/// analysis API ([`ParallelAnalysis::Shared`] in `mdtask-core`) broadcast
/// or ship whole trajectories with the same length-prefixed accounting as
/// any other sequence payload.
impl taskframe::Payload for Trajectory {
    fn wire_bytes(&self) -> u64 {
        taskframe::Payload::wire_bytes(&self.frames)
    }

    fn item_count(&self) -> u64 {
        taskframe::Payload::item_count(&self.frames)
    }
}

/// Standard normal via Box–Muller (keeps us inside the plain `rand` crate —
/// `rand_distr` is not in the approved dependency set).
fn normal(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    }
}

fn gaussian_kick(rng: &mut StdRng, amp: f32) -> Vec3 {
    Vec3::new(normal(rng) * amp, normal(rng) * amp, normal(rng) * amp)
}

/// Generate a trajectory deterministically from `seed`.
pub fn generate(spec: &ChainSpec, seed: u64) -> Trajectory {
    assert!(spec.n_atoms > 0, "chain needs at least one atom");
    assert!(spec.n_frames > 0, "trajectory needs at least one frame");
    let mut rng = StdRng::seed_from_u64(seed);

    // Initial conformation: random walk with fixed bond length.
    let mut pos = Vec::with_capacity(spec.n_atoms);
    pos.push(Vec3::ZERO);
    for i in 1..spec.n_atoms {
        let dir = loop {
            let v = gaussian_kick(&mut rng, 1.0);
            let n = v.norm();
            if n > 1e-6 {
                break v / n;
            }
        };
        let prev = pos[i - 1];
        pos.push(prev + dir * spec.bond_length);
    }

    let mut frames = Vec::with_capacity(spec.n_frames);
    frames.push(Frame::new(pos.clone()));
    for _ in 1..spec.n_frames {
        for _ in 0..spec.stride {
            step(&mut pos, spec, &mut rng);
        }
        frames.push(Frame::new(pos.clone()));
    }
    Trajectory { frames }
}

/// One Brownian step: harmonic bond forces + thermal noise.
fn step(pos: &mut [Vec3], spec: &ChainSpec, rng: &mut StdRng) {
    let n = pos.len();
    let mut force = vec![Vec3::ZERO; n];
    for i in 0..n.saturating_sub(1) {
        let d = pos[i + 1] - pos[i];
        let len = d.norm();
        if len > 1e-6 {
            let f = d * (spec.stiffness * (len - spec.bond_length) / len);
            force[i] += f;
            force[i + 1] -= f;
        }
    }
    for i in 0..n {
        pos[i] += force[i] + gaussian_kick(rng, spec.temperature);
    }
}

/// Generate an ensemble of `count` trajectories with distinct seeds —
/// the paper's PSA input is an ensemble of 128 or 256 trajectories.
pub fn generate_ensemble(spec: &ChainSpec, count: usize, base_seed: u64) -> Vec<Trajectory> {
    (0..count)
        .map(|i| generate(spec, base_seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ChainSpec {
        ChainSpec {
            n_atoms: 20,
            n_frames: 5,
            stride: 2,
            ..ChainSpec::default()
        }
    }

    #[test]
    fn shape_matches_spec() {
        let t = generate(&small_spec(), 7);
        assert_eq!(t.n_frames(), 5);
        assert_eq!(t.n_atoms(), 20);
        assert_eq!(t.size_bytes(), (5 * 20 * 12) as u64);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_spec(), 99);
        let b = generate(&small_spec(), 99);
        assert_eq!(a, b);
        let c = generate(&small_spec(), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn initial_bonds_have_spec_length() {
        let t = generate(&small_spec(), 3);
        let p = t.frames[0].positions();
        for i in 1..p.len() {
            let d = p[i].dist(p[i - 1]);
            assert!((d - 3.8).abs() < 1e-3, "bond {i} length {d}");
        }
    }

    #[test]
    fn dynamics_actually_move_atoms() {
        let t = generate(&small_spec(), 11);
        let first = &t.frames[0];
        let last = &t.frames[4];
        let rmsd = linalg::frame_rmsd(first, last);
        assert!(rmsd > 0.05, "expected motion, rmsd = {rmsd}");
    }

    #[test]
    fn bonds_stay_near_equilibrium() {
        // Stiffness should keep bonds from wandering arbitrarily.
        let t = generate(
            &ChainSpec {
                n_frames: 30,
                ..small_spec()
            },
            5,
        );
        let p = t.frames.last().unwrap().positions();
        for i in 1..p.len() {
            let d = p[i].dist(p[i - 1]);
            assert!(d > 0.5 && d < 12.0, "bond {i} degenerated to {d}");
        }
    }

    #[test]
    fn ensemble_has_distinct_members() {
        let e = generate_ensemble(&small_spec(), 3, 40);
        assert_eq!(e.len(), 3);
        assert_ne!(e[0], e[1]);
        assert_ne!(e[1], e[2]);
    }

    #[test]
    #[should_panic]
    fn zero_atoms_panics() {
        generate(
            &ChainSpec {
                n_atoms: 0,
                ..small_spec()
            },
            0,
        );
    }
}
